package salsa

import (
	"errors"
	"fmt"
)

// Spec describes a sketch topology declaratively: a leaf picks the sketch
// kind (CountMinOf, ConservativeOf, CountSketchOf, MonitorOf, TopKOf,
// UnivMonOf, AEEOf, DistinctOf) and decorators layer the deployment shape
// on top (Windowed, ShardedBy, Filtered, Tiered). A Spec is inert data —
// Build realizes it, returning the same concrete monomorphic sketch types
// the deprecated New* constructors produced, so the devirtualized hot
// paths are unaffected by how a sketch is declared.
//
// The orthogonal choices compose freely within the supported surface:
//
//	Build(CountMinOf(opt))                              → *CountMin
//	Build(ConservativeOf(opt))                          → *CountMin
//	Build(CountSketchOf(opt))                           → *CountSketch
//	Build(MonitorOf(opt, k))                            → *Monitor
//	Build(TopKOf(opt, k))                               → *TopK
//	Build(UnivMonOf(opt, levels, k))                    → *UnivMon
//	Build(AEEOf(opt))                                   → *AEE
//	Build(DistinctOf(opt))                              → *Distinct
//	Build(Filtered(ConservativeOf(opt)))                → *ColdFilter
//	Build(Tiered(CountMinOf(opt)))                      → *Pyramid
//	Build(Windowed(CountMinOf(opt), b, n))              → *WindowedCountMin
//	Build(Windowed(CountSketchOf(opt), b, n))           → *WindowedCountSketch
//	Build(Windowed(MonitorOf(opt, k), b, n))            → *WindowedMonitor
//	Build(Windowed(DistinctOf(opt), b, n))              → *WindowedDistinct
//	Build(ShardedBy(CountMinOf(opt), s))                → *ShardedCountMin
//	Build(ShardedBy(CountSketchOf(opt), s))             → *ShardedCountSketch
//	Build(ShardedBy(MonitorOf(opt, k), s))              → *ShardedMonitor
//	Build(ShardedBy(AEEOf(opt), s))                     → *ShardedAEE
//	Build(ShardedBy(DistinctOf(opt), s))                → *ShardedDistinct
//	Build(ShardedBy(Filtered(ConservativeOf(opt)), s))  → *ShardedColdFilter
//	Build(ShardedBy(Tiered(CountMinOf(opt)), s))        → *ShardedPyramid
//	Build(ShardedBy(Windowed(CountMinOf(opt), b, n), s)) → *ShardedWindowedCountMin
//	Build(ShardedBy(Windowed(CountSketchOf(opt), b, n), s)) → *ShardedWindowedCountSketch
//	Build(ShardedBy(Windowed(MonitorOf(opt, k), b, n), s)) → *ShardedWindowedMonitor
//	Build(EpochShardedBy(CountMinOf(opt), w))            → *EpochCountMin
//	Build(EpochShardedBy(ConservativeOf(opt), w))        → *EpochCountMin
//	Build(EpochShardedBy(CountSketchOf(opt), w))         → *EpochCountSketch
//	Build(EpochShardedBy(MonitorOf(opt, k), w))          → *EpochMonitor
//	Build(EpochShardedBy(DistinctOf(opt), w))            → *EpochDistinct
//	Build(EpochShardedBy(Windowed(CountMinOf(opt), b, 0), w)) → *EpochWindowedCountMin
//	Build(EpochShardedBy(Windowed(CountSketchOf(opt), b, 0), w)) → *EpochWindowedCountSketch
//	Build(EpochShardedBy(Windowed(DistinctOf(opt), b, 0), w)) → *EpochWindowedDistinct
//
// Compositions whose semantics do not hold — windowing a UnivMon (its
// per-level heaps cannot rotate), windowing an AEE (downsampling is
// irreversible), decorating a decorator of the same kind — are reported by
// Build as a *CompositionError, never panics. String returns the topology
// expression in the grammar ParseSpec accepts (the leaf Options are
// carried separately).
type Spec interface {
	// String returns the topology expression, e.g.
	// "sharded(8,windowed(4,65536,cms))"; ParseSpec parses it back.
	String() string
	// validate and build are unexported: the algebra is a closed set, so
	// Build can guarantee an exhaustive, panic-free composition check.
	validate() error
	build() (Sketch, error)
}

// CompositionError is the typed error Build returns when a structurally
// well-formed Spec combines a decorator with a leaf (or another decorator)
// whose semantics do not support it. errors.As-match it to distinguish
// "this topology cannot exist" from invalid Options or parameters.
// ErrNilSpec is returned by Build for a nil Spec.
var ErrNilSpec = errors.New("salsa: Build of a nil spec")

type CompositionError struct {
	// Decorator is the rejecting decorator ("Windowed", "ShardedBy",
	// "Filtered", "Tiered").
	Decorator string
	// Inner is the inner spec's topology expression.
	Inner string
	// Reason states why the semantics do not hold.
	Reason string
}

func (e *CompositionError) Error() string {
	return fmt.Sprintf("salsa: %s cannot decorate %s: %s", e.Decorator, e.Inner, e.Reason)
}

// compositionErr builds a *CompositionError for decorator over inner.
func compositionErr(decorator string, inner Spec, reason string) error {
	return &CompositionError{Decorator: decorator, Inner: fmt.Sprint(inner), Reason: reason}
}

// sketchKind enumerates the leaf sketch kinds of the Spec algebra.
type sketchKind int

const (
	kindCountMin sketchKind = iota
	kindConservative
	kindCountSketch
	kindMonitor
	kindTopK
	kindUnivMon
	kindAEE
	kindDistinct
)

func (k sketchKind) String() string {
	switch k {
	case kindCountMin:
		return "cms"
	case kindConservative:
		return "cus"
	case kindCountSketch:
		return "cs"
	case kindMonitor:
		return "monitor"
	case kindTopK:
		return "topk"
	case kindUnivMon:
		return "univmon"
	case kindAEE:
		return "aee"
	case kindDistinct:
		return "distinct"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// validateFor checks the Options against one leaf kind: the generic
// invariants of Validate plus the kind's own restrictions.
func (o Options) validateFor(kind sketchKind) error {
	if err := o.Validate(); err != nil {
		return err
	}
	switch kind {
	case kindCountSketch, kindTopK, kindUnivMon:
		// UnivMon levels are Count Sketches, so they inherit its rules.
		if o.Mode == ModeTango {
			return errors.New("salsa: CountSketch does not support ModeTango")
		}
		if o.Merge == MergeMax {
			return errors.New("salsa: CountSketch requires MergeSum (signed counters)")
		}
		if o.CounterBits == 1 {
			return fmt.Errorf("salsa: CountSketch needs at least 2-bit counters, got %d", o.CounterBits)
		}
	case kindAEE:
		if o.Mode == ModeTango {
			return errors.New("salsa: AEE does not support ModeTango")
		}
		if o.Merge == MergeMax {
			return errors.New("salsa: AEE manages overflow itself (merge vs downsample); leave Merge unset")
		}
		if o.CompactEncoding {
			return errors.New("salsa: AEE does not support CompactEncoding (downsampling rewrites counters in place)")
		}
	case kindDistinct:
		if o.Mode == ModeTango {
			return errors.New("salsa: Distinct does not support ModeTango (Tango rows do not report zero fractions)")
		}
	}
	return nil
}

// leafSpec is a sketch-kind leaf of the algebra.
type leafSpec struct {
	kind   sketchKind
	opt    Options
	k      int // heap capacity for kindMonitor/kindTopK/kindUnivMon
	levels int // level count for kindUnivMon
}

// CountMinOf describes a Count-Min Sketch over opt.
func CountMinOf(opt Options) Spec { return leafSpec{kind: kindCountMin, opt: opt} }

// ConservativeOf describes a Conservative Update Sketch over opt.
func ConservativeOf(opt Options) Spec { return leafSpec{kind: kindConservative, opt: opt} }

// CountSketchOf describes a Count Sketch over opt.
func CountSketchOf(opt Options) Spec { return leafSpec{kind: kindCountSketch, opt: opt} }

// MonitorOf describes a heavy-hitter Monitor (a Conservative Update sketch
// plus a top-k heap) over opt.
func MonitorOf(opt Options, k int) Spec { return leafSpec{kind: kindMonitor, opt: opt, k: k} }

// TopKOf describes a TopK tracker (a Count Sketch plus a top-k heap) over
// opt.
func TopKOf(opt Options, k int) Spec { return leafSpec{kind: kindTopK, opt: opt, k: k} }

// UnivMonOf describes a UnivMon universal sketch (§III): levels Count
// Sketch instances over geometrically halving substreams, each tracking
// its heapK largest items. Non-positive levels and heapK take the paper's
// defaults (16 levels, heaps of 100), resolved here so the Spec's String
// form spells the actual geometry.
func UnivMonOf(opt Options, levels, heapK int) Spec {
	if levels <= 0 {
		levels = 16
	}
	if heapK <= 0 {
		heapK = 100
	}
	return leafSpec{kind: kindUnivMon, opt: opt, k: heapK, levels: levels}
}

// AEEOf describes an Additive Error Estimator sketch over opt:
// ModeBaseline builds the plain AEE over short fixed counters (16-bit by
// default), ModeSALSA (the default) the paper's estimator-integrated SALSA
// CMS that resolves each overflow by whichever of merging and downsampling
// raises the error bound less (§V).
func AEEOf(opt Options) Spec { return leafSpec{kind: kindAEE, opt: opt} }

// DistinctOf describes a Linear Counting distinct estimator: a Count-Min
// sketch whose rows' zero-counter fractions yield the −w·ln(p) estimate
// (§III, "Counting Distinct Items"). The sketch still answers frequency
// queries; Distinct adds the cardinality surface.
func DistinctOf(opt Options) Spec { return leafSpec{kind: kindDistinct, opt: opt} }

func (s leafSpec) String() string {
	switch s.kind {
	case kindMonitor, kindTopK:
		return fmt.Sprintf("%s(%d)", s.kind, s.k)
	case kindUnivMon:
		return fmt.Sprintf("univmon(%d,%d)", s.levels, s.k)
	}
	return s.kind.String()
}

func (s leafSpec) validate() error {
	if err := s.opt.validateFor(s.kind); err != nil {
		return err
	}
	switch s.kind {
	case kindMonitor, kindTopK:
		if err := validateTrackerK(s.kind.String(), s.k); err != nil {
			return err
		}
	case kindUnivMon:
		if s.levels <= 0 || s.levels > maxUnivMonLevels {
			return fmt.Errorf("salsa: univmon needs between 1 and %d levels, got %d", maxUnivMonLevels, s.levels)
		}
		if err := validateTrackerK("univmon", s.k); err != nil {
			return err
		}
	}
	return nil
}

func (s leafSpec) build() (Sketch, error) {
	switch s.kind {
	case kindCountMin:
		return buildCountMin(s.opt, false)
	case kindConservative:
		return buildCountMin(s.opt, true)
	case kindCountSketch:
		return buildCountSketch(s.opt)
	case kindMonitor:
		return buildMonitor(s.opt, s.k)
	case kindTopK:
		return buildTopK(s.opt, s.k)
	case kindUnivMon:
		return buildUnivMon(s.opt, s.levels, s.k)
	case kindAEE:
		return buildAEE(s.opt)
	case kindDistinct:
		return buildDistinct(s.opt)
	}
	return nil, fmt.Errorf("salsa: unknown sketch kind %v", s.kind)
}

// windowedSpec decorates a leaf with a sliding window.
type windowedSpec struct {
	inner       Spec
	buckets     int
	bucketItems int
}

// Windowed decorates spec with a sliding window of buckets ring buckets
// rotating every bucketItems updates (0 = Tick-driven). The windowed
// sketch always uses sum-merge counters; a spec whose Options force
// MergeMax fails to Build.
func Windowed(spec Spec, buckets, bucketItems int) Spec {
	return windowedSpec{inner: spec, buckets: buckets, bucketItems: bucketItems}
}

func (s windowedSpec) String() string {
	return fmt.Sprintf("windowed(%d,%d,%s)", s.buckets, s.bucketItems, s.inner)
}

func (s windowedSpec) validate() error {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		if s.inner == nil {
			return errors.New("salsa: Windowed over a nil spec")
		}
		return compositionErr("Windowed", s.inner, "window the sketch, then layer the other decorators on the window")
	}
	switch leaf.kind {
	case kindTopK:
		return compositionErr("Windowed", s.inner, "a TopK's signed estimates do not rotate; use MonitorOf for windowed heavy hitters")
	case kindUnivMon:
		return compositionErr("Windowed", s.inner, "UnivMon per-level heaps hold whole-stream candidates and cannot retire a bucket's contribution")
	case kindAEE:
		return compositionErr("Windowed", s.inner, "AEE downsampling is irreversible, so a retiring bucket cannot restore the sampling rate")
	}
	if err := leaf.validate(); err != nil {
		return err
	}
	return validateWindow(leaf.opt, s.buckets, s.bucketItems)
}

func (s windowedSpec) build() (Sketch, error) {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		return nil, s.validate()
	}
	switch leaf.kind {
	case kindCountMin:
		return buildWindowedCMS(leaf.opt, s.buckets, s.bucketItems, false)
	case kindConservative:
		return buildWindowedCMS(leaf.opt, s.buckets, s.bucketItems, true)
	case kindCountSketch:
		return buildWindowedCountSketch(leaf.opt, s.buckets, s.bucketItems)
	case kindMonitor:
		return buildWindowedMonitor(leaf.opt, leaf.k, s.buckets, s.bucketItems)
	case kindDistinct:
		return buildWindowedDistinct(leaf.opt, s.buckets, s.bucketItems)
	}
	return nil, s.validate()
}

// shardedSpec decorates a topology with the concurrent ingestion layer.
type shardedSpec struct {
	inner  Spec
	shards int
}

// ShardedBy decorates spec with the Sharded concurrency layer: shards
// hash-routed, independently-locked copies (rounded up to a power of two).
// ShardedBy must be the outermost decorator; it accepts a leaf or a
// Windowed leaf.
func ShardedBy(spec Spec, shards int) Spec {
	return shardedSpec{inner: spec, shards: shards}
}

func (s shardedSpec) String() string {
	return fmt.Sprintf("sharded(%d,%s)", s.shards, s.inner)
}

func (s shardedSpec) validate() error {
	if s.shards <= 0 {
		return fmt.Errorf("salsa: ShardedBy needs a positive shard count, got %d", s.shards)
	}
	if err := validateShardCount(s.shards); err != nil {
		return err
	}
	switch inner := s.inner.(type) {
	case leafSpec:
		switch inner.kind {
		case kindTopK:
			return compositionErr("ShardedBy", s.inner, "a TopK's signed global estimates do not partition; use MonitorOf for sharded heavy hitters")
		case kindUnivMon:
			return compositionErr("ShardedBy", s.inner, "UnivMon's recursive G-sum estimator couples levels across the whole stream; run one UnivMon per substream instead")
		}
		return inner.validate()
	case windowedSpec:
		if leaf, ok := inner.inner.(leafSpec); ok && leaf.kind == kindDistinct {
			return compositionErr("ShardedBy", s.inner, "shard independent WindowedDistinct instances instead; their estimates add across the routing partition")
		}
		return inner.validate()
	case filteredSpec, tieredSpec:
		return s.inner.validate()
	case nil:
		return errors.New("salsa: ShardedBy over a nil spec")
	}
	return compositionErr("ShardedBy", s.inner, "ShardedBy must be the outermost decorator")
}

func (s shardedSpec) build() (Sketch, error) {
	switch inner := s.inner.(type) {
	case leafSpec:
		switch inner.kind {
		case kindCountMin:
			return buildShardedCountMin(inner.opt, s.shards, false)
		case kindConservative:
			return buildShardedCountMin(inner.opt, s.shards, true)
		case kindCountSketch:
			return buildShardedCountSketch(inner.opt, s.shards)
		case kindMonitor:
			return buildShardedMonitor(inner.opt, inner.k, s.shards)
		case kindAEE:
			return buildShardedAEE(inner.opt, s.shards)
		case kindDistinct:
			return buildShardedDistinct(inner.opt, s.shards)
		}
	case windowedSpec:
		if leaf, ok := inner.inner.(leafSpec); ok {
			switch leaf.kind {
			case kindCountMin:
				return buildShardedWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.shards, false)
			case kindConservative:
				return buildShardedWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.shards, true)
			case kindCountSketch:
				return buildShardedWindowedCountSketch(leaf.opt, inner.buckets, inner.bucketItems, s.shards)
			case kindMonitor:
				return buildShardedWindowedMonitor(leaf.opt, leaf.k, inner.buckets, inner.bucketItems, s.shards)
			}
		}
	case filteredSpec:
		if leaf, ok := inner.inner.(leafSpec); ok {
			return buildShardedColdFilter(leaf.opt, leaf.kind == kindConservative, s.shards)
		}
	case tieredSpec:
		if leaf, ok := inner.inner.(leafSpec); ok {
			return buildShardedPyramid(leaf.opt, s.shards)
		}
	}
	return nil, s.validate()
}

// epochSpec decorates a topology with the epoch-merged lock-free
// ingestion layer.
type epochSpec struct {
	inner   Spec
	writers int
}

// EpochShardedBy decorates spec with the epoch-merged concurrency layer:
// writers pre-allocated private sketch slots ingested lock-free by
// per-goroutine EpochWriters and drained into one shared read view at
// epoch boundaries (Advance/AutoAdvance, or Tick for windowed inners).
// The slot count adapts: demand beyond writers grows it, sustained empty
// drains shrink it back. Like ShardedBy it must be the outermost
// decorator; it accepts the mergeable leaves (cms, cus, cs, monitor,
// distinct) and Tick-driven windows over cms/cus/cs/distinct. Epoch
// sketches force sum-merge counters, so a spec whose Options demand
// MergeMax fails to Build.
func EpochShardedBy(spec Spec, writers int) Spec {
	return epochSpec{inner: spec, writers: writers}
}

func (s epochSpec) String() string {
	return fmt.Sprintf("epoch(%d,%s)", s.writers, s.inner)
}

func (s epochSpec) validate() error {
	if err := validateEpochWriters(s.writers); err != nil {
		return err
	}
	switch inner := s.inner.(type) {
	case leafSpec:
		switch inner.kind {
		case kindTopK:
			return compositionErr("EpochShardedBy", s.inner, "a TopK candidate's signed private-epoch estimate does not survive re-offering against the merged view; use MonitorOf for epoch heavy hitters")
		case kindUnivMon:
			return compositionErr("EpochShardedBy", s.inner, "UnivMon's recursive G-sum estimator couples levels across the whole stream; run one UnivMon per substream instead")
		case kindAEE:
			return compositionErr("EpochShardedBy", s.inner, "AEE downsampling is irreversible, so private estimators' sampling decisions cannot be merged into one view")
		}
		if err := inner.validate(); err != nil {
			return err
		}
		return validateEpochMerge(inner.opt)
	case windowedSpec:
		leaf, ok := inner.inner.(leafSpec)
		if !ok {
			return inner.validate()
		}
		if leaf.kind == kindMonitor {
			return compositionErr("EpochShardedBy", s.inner, "per-bucket candidate heaps need per-item offers at ingest time, which private-epoch ingestion defers past rotation; use EpochShardedBy(MonitorOf) for whole-stream heavy hitters")
		}
		if inner.bucketItems != 0 {
			return compositionErr("EpochShardedBy", s.inner, "count-based rotation would split a drained epoch across buckets; use a Tick-driven window (bucketItems = 0)")
		}
		return inner.validate()
	case nil:
		return errors.New("salsa: EpochShardedBy over a nil spec")
	}
	return compositionErr("EpochShardedBy", s.inner, "EpochShardedBy must be the outermost decorator")
}

func (s epochSpec) build() (Sketch, error) {
	switch inner := s.inner.(type) {
	case leafSpec:
		switch inner.kind {
		case kindCountMin:
			return buildEpochCountMin(inner.opt, s.writers, false)
		case kindConservative:
			return buildEpochCountMin(inner.opt, s.writers, true)
		case kindCountSketch:
			return buildEpochCountSketch(inner.opt, s.writers)
		case kindMonitor:
			return buildEpochMonitor(inner.opt, inner.k, s.writers)
		case kindDistinct:
			return buildEpochDistinct(inner.opt, s.writers)
		}
	case windowedSpec:
		if leaf, ok := inner.inner.(leafSpec); ok {
			switch leaf.kind {
			case kindCountMin:
				return buildEpochWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.writers, false)
			case kindConservative:
				return buildEpochWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.writers, true)
			case kindCountSketch:
				return buildEpochWindowedCountSketch(leaf.opt, inner.buckets, inner.bucketItems, s.writers)
			case kindDistinct:
				return buildEpochWindowedDistinct(leaf.opt, inner.buckets, inner.bucketItems, s.writers)
			}
		}
	}
	return nil, s.validate()
}

// filteredSpec decorates a frequency leaf with the Cold Filter front end.
type filteredSpec struct {
	inner Spec
}

// Filtered decorates a CountMinOf or ConservativeOf leaf with a Cold
// Filter (§III): two conservative filter layers (4-bit and 8-bit) absorb
// the cold items' volume, and only the hot residual reaches the leaf
// sketch, which becomes the filter's second stage. The filter layer widths
// are derived from the leaf Width (4× for layer 1, 1× for layer 2, 3
// probes each), so one Options describes the whole pipeline.
func Filtered(spec Spec) Spec { return filteredSpec{inner: spec} }

func (s filteredSpec) String() string { return fmt.Sprintf("filtered(%s)", s.inner) }

func (s filteredSpec) validate() error {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		if s.inner == nil {
			return errors.New("salsa: Filtered over a nil spec")
		}
		return compositionErr("Filtered", s.inner, "the filter front end feeds a single second-stage sketch; decorate the leaf, then shard the filter")
	}
	switch leaf.kind {
	case kindCountMin, kindConservative:
	default:
		return compositionErr("Filtered", s.inner, "the filter's residual stream only preserves CountMin/ConservativeUpdate overestimate semantics")
	}
	if err := leaf.validate(); err != nil {
		return err
	}
	return validateFilterWidth(leaf.opt.Width)
}

func (s filteredSpec) build() (Sketch, error) {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		return nil, s.validate()
	}
	return buildColdFilter(leaf.opt, leaf.kind == kindConservative)
}

// tieredSpec decorates a CountMin leaf with the Pyramid layered counters.
type tieredSpec struct {
	inner Spec
}

// Tiered decorates a CountMinOf leaf with the Pyramid sketch's layered
// hybrid counters (the paper's variable-counter-size competitor): layer-1
// cells are 8-bit counters and overflows carry into halving-width parent
// layers of shared 6-bit hybrid counters. The pyramid replaces the leaf's
// counter backend entirely, so the leaf's Mode, CounterBits, Merge and
// CompactEncoding are not used; Depth, Width and Seed shape the rows.
func Tiered(spec Spec) Spec { return tieredSpec{inner: spec} }

func (s tieredSpec) String() string { return fmt.Sprintf("tiered(%s)", s.inner) }

func (s tieredSpec) validate() error {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		if s.inner == nil {
			return errors.New("salsa: Tiered over a nil spec")
		}
		return compositionErr("Tiered", s.inner, "the pyramid is a counter backend for a single sketch; decorate the leaf, then shard the pyramid")
	}
	if leaf.kind != kindCountMin {
		return compositionErr("Tiered", s.inner, "pyramid carries implement plain Count-Min updates only")
	}
	if err := leaf.validate(); err != nil {
		return err
	}
	return validatePyramidWidth(leaf.opt.Width)
}

func (s tieredSpec) build() (Sketch, error) {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		return nil, s.validate()
	}
	return buildPyramid(leaf.opt)
}

// Build realizes a Spec, returning the topology's concrete sketch type
// behind the Sketch interface (type-assert for the query surface). All
// construction errors — invalid Options, unsupported compositions — are
// returned, never panicked.
func Build(spec Spec) (Sketch, error) {
	if spec == nil {
		return nil, ErrNilSpec
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec.build()
}

// MustBuild is Build for specs known valid at compile time; it panics on
// error.
func MustBuild(spec Spec) Sketch {
	s, err := Build(spec)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// mustSketch unwraps a builder result whose inputs were already validated;
// the deprecated panicking constructors are thin shims over it.
func mustSketch[S any](s S, err error) S {
	if err != nil {
		panic(err.Error())
	}
	return s
}
