package salsa

import (
	"errors"
	"fmt"
)

// Spec describes a sketch topology declaratively: a leaf picks the sketch
// kind (CountMinOf, ConservativeOf, CountSketchOf, MonitorOf, TopKOf) and
// decorators layer the deployment shape on top (Windowed, ShardedBy). A
// Spec is inert data — Build realizes it, returning the same concrete
// monomorphic sketch types the deprecated New* constructors produced, so
// the devirtualized hot paths are unaffected by how a sketch is declared.
//
// The orthogonal choices compose freely within the supported surface:
//
//	Build(CountMinOf(opt))                              → *CountMin
//	Build(ConservativeOf(opt))                          → *CountMin
//	Build(CountSketchOf(opt))                           → *CountSketch
//	Build(MonitorOf(opt, k))                            → *Monitor
//	Build(TopKOf(opt, k))                               → *TopK
//	Build(Windowed(CountMinOf(opt), b, n))              → *WindowedCountMin
//	Build(Windowed(CountSketchOf(opt), b, n))           → *WindowedCountSketch
//	Build(Windowed(MonitorOf(opt, k), b, n))            → *WindowedMonitor
//	Build(ShardedBy(CountMinOf(opt), s))                → *ShardedCountMin
//	Build(ShardedBy(CountSketchOf(opt), s))             → *ShardedCountSketch
//	Build(ShardedBy(MonitorOf(opt, k), s))              → *ShardedMonitor
//	Build(ShardedBy(Windowed(CountMinOf(opt), b, n), s)) → *ShardedWindowedCountMin
//	Build(ShardedBy(Windowed(CountSketchOf(opt), b, n), s)) → *ShardedWindowedCountSketch
//
// Unsupported compositions (decorating a decorator of the same kind,
// windowing a TopK, sharding a windowed Monitor) are reported as errors by
// Build, never panics. String returns the topology expression in the
// grammar ParseSpec accepts (the leaf Options are carried separately).
type Spec interface {
	// String returns the topology expression, e.g.
	// "sharded(8,windowed(4,65536,cms))"; ParseSpec parses it back.
	String() string
	// validate and build are unexported: the algebra is a closed set, so
	// Build can guarantee an exhaustive, panic-free composition check.
	validate() error
	build() (Sketch, error)
}

// sketchKind enumerates the leaf sketch kinds of the Spec algebra.
type sketchKind int

const (
	kindCountMin sketchKind = iota
	kindConservative
	kindCountSketch
	kindMonitor
	kindTopK
)

func (k sketchKind) String() string {
	switch k {
	case kindCountMin:
		return "cms"
	case kindConservative:
		return "cus"
	case kindCountSketch:
		return "cs"
	case kindMonitor:
		return "monitor"
	case kindTopK:
		return "topk"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// validateFor checks the Options against one leaf kind: the generic
// invariants of Validate plus the kind's own restrictions.
func (o Options) validateFor(kind sketchKind) error {
	if err := o.Validate(); err != nil {
		return err
	}
	switch kind {
	case kindCountSketch, kindTopK:
		if o.Mode == ModeTango {
			return errors.New("salsa: CountSketch does not support ModeTango")
		}
		if o.Merge == MergeMax {
			return errors.New("salsa: CountSketch requires MergeSum (signed counters)")
		}
		if o.CounterBits == 1 {
			return fmt.Errorf("salsa: CountSketch needs at least 2-bit counters, got %d", o.CounterBits)
		}
	}
	return nil
}

// leafSpec is a sketch-kind leaf of the algebra.
type leafSpec struct {
	kind sketchKind
	opt  Options
	k    int // heap capacity for kindMonitor/kindTopK
}

// CountMinOf describes a Count-Min Sketch over opt.
func CountMinOf(opt Options) Spec { return leafSpec{kind: kindCountMin, opt: opt} }

// ConservativeOf describes a Conservative Update Sketch over opt.
func ConservativeOf(opt Options) Spec { return leafSpec{kind: kindConservative, opt: opt} }

// CountSketchOf describes a Count Sketch over opt.
func CountSketchOf(opt Options) Spec { return leafSpec{kind: kindCountSketch, opt: opt} }

// MonitorOf describes a heavy-hitter Monitor (a Conservative Update sketch
// plus a top-k heap) over opt.
func MonitorOf(opt Options, k int) Spec { return leafSpec{kind: kindMonitor, opt: opt, k: k} }

// TopKOf describes a TopK tracker (a Count Sketch plus a top-k heap) over
// opt.
func TopKOf(opt Options, k int) Spec { return leafSpec{kind: kindTopK, opt: opt, k: k} }

func (s leafSpec) String() string {
	switch s.kind {
	case kindMonitor, kindTopK:
		return fmt.Sprintf("%s(%d)", s.kind, s.k)
	}
	return s.kind.String()
}

func (s leafSpec) validate() error {
	if err := s.opt.validateFor(s.kind); err != nil {
		return err
	}
	if s.kind == kindMonitor || s.kind == kindTopK {
		if err := validateTrackerK(s.kind.String(), s.k); err != nil {
			return err
		}
	}
	return nil
}

func (s leafSpec) build() (Sketch, error) {
	switch s.kind {
	case kindCountMin:
		return buildCountMin(s.opt, false)
	case kindConservative:
		return buildCountMin(s.opt, true)
	case kindCountSketch:
		return buildCountSketch(s.opt)
	case kindMonitor:
		return buildMonitor(s.opt, s.k)
	case kindTopK:
		return buildTopK(s.opt, s.k)
	}
	return nil, fmt.Errorf("salsa: unknown sketch kind %v", s.kind)
}

// windowedSpec decorates a leaf with a sliding window.
type windowedSpec struct {
	inner       Spec
	buckets     int
	bucketItems int
}

// Windowed decorates spec with a sliding window of buckets ring buckets
// rotating every bucketItems updates (0 = Tick-driven). The windowed
// sketch always uses sum-merge counters; a spec whose Options force
// MergeMax fails to Build.
func Windowed(spec Spec, buckets, bucketItems int) Spec {
	return windowedSpec{inner: spec, buckets: buckets, bucketItems: bucketItems}
}

func (s windowedSpec) String() string {
	return fmt.Sprintf("windowed(%d,%d,%s)", s.buckets, s.bucketItems, s.inner)
}

func (s windowedSpec) validate() error {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		if s.inner == nil {
			return errors.New("salsa: Windowed over a nil spec")
		}
		return fmt.Errorf("salsa: Windowed cannot decorate %T (window the sketch, then shard the window)", s.inner)
	}
	if leaf.kind == kindTopK {
		return errors.New("salsa: Windowed does not support TopK (use MonitorOf for windowed heavy hitters)")
	}
	if err := leaf.validate(); err != nil {
		return err
	}
	return validateWindow(leaf.opt, s.buckets, s.bucketItems)
}

func (s windowedSpec) build() (Sketch, error) {
	leaf, ok := s.inner.(leafSpec)
	if !ok {
		return nil, s.validate()
	}
	switch leaf.kind {
	case kindCountMin:
		return buildWindowedCMS(leaf.opt, s.buckets, s.bucketItems, false)
	case kindConservative:
		return buildWindowedCMS(leaf.opt, s.buckets, s.bucketItems, true)
	case kindCountSketch:
		return buildWindowedCountSketch(leaf.opt, s.buckets, s.bucketItems)
	case kindMonitor:
		return buildWindowedMonitor(leaf.opt, leaf.k, s.buckets, s.bucketItems)
	}
	return nil, fmt.Errorf("salsa: Windowed does not support %v", leaf.kind)
}

// shardedSpec decorates a topology with the concurrent ingestion layer.
type shardedSpec struct {
	inner  Spec
	shards int
}

// ShardedBy decorates spec with the Sharded concurrency layer: shards
// hash-routed, independently-locked copies (rounded up to a power of two).
// ShardedBy must be the outermost decorator; it accepts a leaf or a
// Windowed leaf.
func ShardedBy(spec Spec, shards int) Spec {
	return shardedSpec{inner: spec, shards: shards}
}

func (s shardedSpec) String() string {
	return fmt.Sprintf("sharded(%d,%s)", s.shards, s.inner)
}

func (s shardedSpec) validate() error {
	if s.shards <= 0 {
		return fmt.Errorf("salsa: ShardedBy needs a positive shard count, got %d", s.shards)
	}
	if err := validateShardCount(s.shards); err != nil {
		return err
	}
	switch inner := s.inner.(type) {
	case leafSpec:
		if inner.kind == kindTopK {
			return errors.New("salsa: ShardedBy does not support TopK (use MonitorOf for sharded heavy hitters)")
		}
		return inner.validate()
	case windowedSpec:
		if leaf, ok := inner.inner.(leafSpec); ok && leaf.kind == kindMonitor {
			return errors.New("salsa: ShardedBy does not support a windowed Monitor")
		}
		return inner.validate()
	case nil:
		return errors.New("salsa: ShardedBy over a nil spec")
	}
	return fmt.Errorf("salsa: ShardedBy cannot decorate %T", s.inner)
}

func (s shardedSpec) build() (Sketch, error) {
	switch inner := s.inner.(type) {
	case leafSpec:
		switch inner.kind {
		case kindCountMin:
			return buildShardedCountMin(inner.opt, s.shards, false)
		case kindConservative:
			return buildShardedCountMin(inner.opt, s.shards, true)
		case kindCountSketch:
			return buildShardedCountSketch(inner.opt, s.shards)
		case kindMonitor:
			return buildShardedMonitor(inner.opt, inner.k, s.shards)
		}
	case windowedSpec:
		if leaf, ok := inner.inner.(leafSpec); ok {
			switch leaf.kind {
			case kindCountMin:
				return buildShardedWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.shards, false)
			case kindConservative:
				return buildShardedWindowedCMS(leaf.opt, inner.buckets, inner.bucketItems, s.shards, true)
			case kindCountSketch:
				return buildShardedWindowedCountSketch(leaf.opt, inner.buckets, inner.bucketItems, s.shards)
			}
		}
	}
	return nil, s.validate()
}

// Build realizes a Spec, returning the topology's concrete sketch type
// behind the Sketch interface (type-assert for the query surface). All
// construction errors — invalid Options, unsupported compositions — are
// returned, never panicked.
func Build(spec Spec) (Sketch, error) {
	if spec == nil {
		return nil, errors.New("salsa: Build of a nil spec")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec.build()
}

// MustBuild is Build for specs known valid at compile time; it panics on
// error.
func MustBuild(spec Spec) Sketch {
	s, err := Build(spec)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// mustSketch unwraps a builder result whose inputs were already validated;
// the deprecated panicking constructors are thin shims over it.
func mustSketch[S any](s S, err error) S {
	if err != nil {
		panic(err.Error())
	}
	return s
}
