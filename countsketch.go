package salsa

import (
	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// CountSketch is a Count Sketch over the configured counter backend:
// unbiased, works in the general Turnstile model (negative frequencies) and
// provides the stronger L2 error guarantee. SALSA rows use sign-magnitude
// counters so that overflow is sign-symmetric, which preserves
// unbiasedness (Lemma V.4); Tango mode is not supported.
type CountSketch struct {
	sk  *sketch.CountSketch
	opt Options
}

// buildCountSketch realizes a CountSketchOf leaf. Merge policy is always
// sum; ModeTango and MergeMax are composition errors.
func buildCountSketch(opt Options) (*CountSketch, error) {
	if err := opt.validateFor(kindCountSketch); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(5, MergeSum)
	return &CountSketch{sk: sketch.NewCountSketch(opt.Depth, opt.Width, signedRowSpec(opt), opt.Seed), opt: opt}, nil
}

// NewCountSketch returns a Count Sketch, panicking on invalid Options.
//
// Deprecated: Use Build(CountSketchOf(opt)), which returns construction
// errors instead of panicking and composes with Windowed/ShardedBy.
func NewCountSketch(opt Options) *CountSketch {
	return mustSketch(buildCountSketch(opt))
}

// signedRowSpec maps validated Options to the Count Sketch row constructor.
func signedRowSpec(opt Options) sketch.SignedRowSpec {
	if opt.Mode == ModeBaseline {
		return sketch.FixedSignRow(opt.CounterBits)
	}
	return sketch.SalsaSignRow(opt.CounterBits, opt.CompactEncoding)
}

// Update adds count occurrences of item (count of either sign).
//
//salsa:hotpath
func (c *CountSketch) Update(item uint64, count int64) { c.sk.Update(item, count) }

// Increment adds one occurrence of item.
//
//salsa:hotpath
func (c *CountSketch) Increment(item uint64) { c.sk.Update(item, 1) }

// Query returns the (unbiased) frequency estimate for item.
//
//salsa:hotpath
func (c *CountSketch) Query(item uint64) int64 { return c.sk.Query(item) }

// UpdateBatch adds count occurrences of every item, in order; identical in
// effect to single Updates, hashed and applied row-at-a-time.
//
//salsa:hotpath
func (c *CountSketch) UpdateBatch(items []uint64, count int64) { c.sk.UpdateBatch(items, count) }

// IncrementBatch adds one occurrence of every item, in order.
//
//salsa:hotpath
func (c *CountSketch) IncrementBatch(items []uint64) { c.sk.UpdateBatch(items, 1) }

// QueryBatch writes the estimate of items[j] into dst[j] and returns dst,
// appending if dst is short (pass nil to allocate). Like Query, it must not
// run concurrently with other operations on c.
//
//salsa:hotpath
func (c *CountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	return c.sk.QueryBatch(items, dst)
}

// MemoryBits returns the sketch footprint in bits.
func (c *CountSketch) MemoryBits() int { return c.sk.SizeBits() }

// Depth and Width return the sketch geometry.
func (c *CountSketch) Depth() int { return c.sk.Depth() }

// Width returns the per-row slot count.
func (c *CountSketch) Width() int { return c.sk.Width() }

// Options returns the configuration the sketch was built with.
func (c *CountSketch) Options() Options { return c.opt }

// Merge folds other into c: s(A∪B). Sketches must share Options and Seed.
func (c *CountSketch) Merge(other *CountSketch) { c.sk.MergeFrom(other.sk, 1) }

// Subtract removes other from c: s(A\B), the frequency-difference sketch
// used for change detection (§V).
func (c *CountSketch) Subtract(other *CountSketch) { c.sk.MergeFrom(other.sk, -1) }

// TopK tracks the k items of largest estimated |frequency| over a
// CountSketch in one pass.
type TopK struct {
	cs   *CountSketch
	heap *topk.Heap
}

// buildTopK realizes a TopKOf leaf.
func buildTopK(opt Options, k int) (*TopK, error) {
	if err := validateTrackerK("topk", k); err != nil {
		return nil, err
	}
	cs, err := buildCountSketch(opt)
	if err != nil {
		return nil, err
	}
	return &TopK{cs: cs, heap: topk.New(k)}, nil
}

// NewTopK returns a Count Sketch top-k tracker.
//
// Deprecated: Use Build(TopKOf(opt, k)).
func NewTopK(opt Options, k int) *TopK {
	return mustSketch(buildTopK(opt, k))
}

// Process records one occurrence of item and refreshes its heap entry.
func (t *TopK) Process(item uint64) { t.Update(item, 1) }

// Update records count occurrences of item (count of either sign) and
// refreshes its heap entry; with it TopK satisfies Sketch.
func (t *TopK) Update(item uint64, count int64) {
	t.cs.Update(item, count)
	t.heap.Offer(item, t.cs.Query(item))
}

// UpdateBatch records count occurrences of every item, in order. The heap
// refresh couples items, so this is a per-item loop kept for the Sketch
// interface; identical to sequential Updates.
func (t *TopK) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		t.Update(x, count)
	}
}

// MemoryBits returns the underlying sketch footprint in bits.
func (t *TopK) MemoryBits() int { return t.cs.MemoryBits() }

// Sketch exposes the underlying CountSketch.
func (t *TopK) Sketch() *CountSketch { return t.cs }

// Top returns the tracked items in descending estimate order.
func (t *TopK) Top() []ItemCount {
	entries := t.heap.Items()
	out := make([]ItemCount, len(entries))
	for i, e := range entries {
		out[i] = ItemCount{Item: e.Item, Count: e.Count}
	}
	return out
}

// ChangeDetector sketches two stream epochs with shared hashes and answers
// frequency-difference queries from their subtraction (§V and Fig. 15c,d).
type ChangeDetector struct {
	before, after *CountSketch
	diffed        bool
}

// NewChangeDetector returns a detector; opt.Merge must be sum (default).
func NewChangeDetector(opt Options) *ChangeDetector {
	return &ChangeDetector{
		before: mustSketch(buildCountSketch(opt)),
		after:  mustSketch(buildCountSketch(opt)),
	}
}

// ObserveBefore records an item in the first epoch.
func (d *ChangeDetector) ObserveBefore(item uint64) { d.mustOpen(); d.before.Increment(item) }

// ObserveAfter records an item in the second epoch.
func (d *ChangeDetector) ObserveAfter(item uint64) { d.mustOpen(); d.after.Increment(item) }

func (d *ChangeDetector) mustOpen() {
	if d.diffed {
		panic("salsa: ChangeDetector already finalized")
	}
}

// Change returns the estimated frequency change (after − before) of item.
// The first call finalizes the detector: the epoch sketches are subtracted
// in place and no further observations are accepted.
func (d *ChangeDetector) Change(item uint64) int64 {
	if !d.diffed {
		d.after.Subtract(d.before)
		d.diffed = true
	}
	return d.after.Query(item)
}
