//go:build race

package salsa

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation allocates; the zero-allocation assertions skip.
const raceEnabled = true
