package salsa

import (
	"salsa/internal/aee"
)

// aeeDelta is the failure-probability budget of the SALSA AEE overflow
// comparison, the paper's δ = 4·δest = 0.001 setting (§V).
const aeeDelta = 0.001

// AEE is an Additive Error Estimator sketch (§V): instead of growing
// counters, updates are sampled with probability p = 2^−k and every
// overflow halves p and downsamples the counters, trading a bounded
// additive error for counting range and speed. The backend follows
// Options.Mode:
//
//   - ModeSALSA (default): the paper's estimator-integrated SALSA CMS,
//     which resolves each largest-counter overflow by whichever of merging
//     and downsampling raises the theoretical error bound less.
//   - ModeBaseline: the plain AEE MaxAccuracy estimator over short fixed
//     counters (CounterBits wide, default 16), with Binomial downsampling.
//
// AEE is a Cash Register sketch: Update panics on negative counts. Weights
// are admitted whole on the baseline backend and as unit arrivals on the
// SALSA backend, whose overflow arbitration is defined per arrival.
type AEE struct {
	opt Options
	est *aee.Estimator // ModeBaseline
	sal *aee.SalsaAEE  // ModeSALSA
}

// aeeDefaults resolves the AEE-specific defaults: 4 rows and a 16-bit
// (not 32-bit) baseline counter, the estimators paper's configuration.
func aeeDefaults(opt Options) Options {
	if opt.CounterBits == 0 && opt.Mode == ModeBaseline {
		opt.CounterBits = 16
	}
	return opt.withDefaults(4, MergeSum)
}

// buildAEE realizes an AEEOf spec.
func buildAEE(opt Options) (*AEE, error) {
	if err := opt.validateFor(kindAEE); err != nil {
		return nil, err
	}
	opt = aeeDefaults(opt)
	a := &AEE{opt: opt}
	if opt.Mode == ModeBaseline {
		a.est = aee.NewMaxAccuracy(aee.Config{
			Rows:          opt.Depth,
			Width:         opt.Width,
			CounterBits:   opt.CounterBits,
			Probabilistic: true,
			Seed:          opt.Seed,
		})
	} else {
		a.sal = aee.NewSalsa(aee.SalsaConfig{
			Rows:  opt.Depth,
			Width: opt.Width,
			S:     opt.CounterBits,
			Delta: aeeDelta,
			Seed:  opt.Seed,
		})
	}
	return a, nil
}

// Update adds count occurrences of item; count must be non-negative.
func (a *AEE) Update(item uint64, count int64) {
	if count < 0 {
		panic("salsa: AEE supports Cash Register streams only (count must be non-negative)")
	}
	if count == 0 {
		return
	}
	if a.est != nil {
		a.est.UpdateWeighted(item, uint64(count))
		return
	}
	for ; count > 0; count-- {
		a.sal.Update(item)
	}
}

// UpdateBatch adds count occurrences of every item, in order.
func (a *AEE) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		a.Update(x, count)
	}
}

// Process records one occurrence of item.
func (a *AEE) Process(item uint64) { a.Update(item, 1) }

// Query returns the frequency estimate: the min-over-rows counter scaled
// by the inverse sampling probability 1/p.
func (a *AEE) Query(item uint64) float64 {
	if a.est != nil {
		return a.est.Query(item)
	}
	return a.sal.Query(item)
}

// SampleProb returns the current sampling probability p.
func (a *AEE) SampleProb() float64 {
	if a.est != nil {
		return a.est.SampleProb()
	}
	return a.sal.SampleProb()
}

// Downsamples returns how many downsampling events have occurred.
func (a *AEE) Downsamples() uint {
	if a.est != nil {
		return a.est.Downsamples()
	}
	return a.sal.Downsamples()
}

// Options returns the sketch Options with defaults applied.
func (a *AEE) Options() Options { return a.opt }

// MemoryBits returns the counter footprint in bits.
func (a *AEE) MemoryBits() int {
	if a.est != nil {
		return a.est.SizeBits()
	}
	return a.sal.SizeBits()
}
