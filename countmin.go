package salsa

import (
	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// CountMin is a Count-Min Sketch (or, via NewConservativeUpdate, a
// Conservative Update Sketch) over the configured counter backend. It
// overestimates: truth ≤ Query(x), with the error bounds of the underlying
// scheme (Theorems V.1–V.3 of the paper for the SALSA/Tango backends).
type CountMin struct {
	sk           *sketch.CMS
	opt          Options
	conservative bool
}

// buildCountMin realizes a CountMinOf/ConservativeOf leaf. By default
// SALSA mode uses max-merge, which is correct for the Cash Register
// streams (non-negative updates) most callers have; set Merge: MergeSum
// for Strict Turnstile streams with decrements, and for sketches that will
// be merged/subtracted.
func buildCountMin(opt Options, conservative bool) (*CountMin, error) {
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeMax)
	var sk *sketch.CMS
	if conservative {
		sk = sketch.NewCUS(opt.Depth, opt.Width, rowSpec(opt), opt.Seed)
	} else {
		sk = sketch.NewCMS(opt.Depth, opt.Width, rowSpec(opt), opt.Seed)
	}
	return &CountMin{sk: sk, opt: opt, conservative: conservative}, nil
}

// NewCountMin returns a Count-Min Sketch, panicking on invalid Options.
//
// Deprecated: Use Build(CountMinOf(opt)), which returns construction
// errors instead of panicking and composes with Windowed/ShardedBy.
func NewCountMin(opt Options) *CountMin {
	return mustSketch(buildCountMin(opt, false))
}

// NewConservativeUpdate returns a Conservative Update Sketch: CMS accuracy
// improved by only raising the counters that constrain the estimate (§III).
// Restricted to the Cash Register model; SALSA rows use max-merge
// (Theorem V.3).
//
// Deprecated: Use Build(ConservativeOf(opt)).
func NewConservativeUpdate(opt Options) *CountMin {
	return mustSketch(buildCountMin(opt, true))
}

func rowSpec(opt Options) sketch.RowSpec {
	switch opt.Mode {
	case ModeBaseline:
		return sketch.FixedRow(opt.CounterBits)
	case ModeTango:
		return sketch.TangoRow(opt.CounterBits, opt.policy())
	default:
		return sketch.SalsaRow(opt.CounterBits, opt.policy(), opt.CompactEncoding)
	}
}

// Update adds count occurrences of item. Negative counts are allowed only
// with MergeSum (Strict Turnstile) and never in conservative mode.
//
//salsa:hotpath
func (c *CountMin) Update(item uint64, count int64) { c.sk.Update(item, count) }

// Increment adds one occurrence of item.
//
//salsa:hotpath
func (c *CountMin) Increment(item uint64) { c.sk.Update(item, 1) }

// Query returns the frequency estimate for item (an overestimate).
//
//salsa:hotpath
func (c *CountMin) Query(item uint64) uint64 { return c.sk.Query(item) }

// UpdateBatch adds count occurrences of every item, in order. It leaves the
// sketch in the identical state as single Updates but hashes and updates
// row-at-a-time, the fast path for bulk ingestion.
//
//salsa:hotpath
func (c *CountMin) UpdateBatch(items []uint64, count int64) { c.sk.UpdateBatch(items, count) }

// IncrementBatch adds one occurrence of every item, in order.
//
//salsa:hotpath
func (c *CountMin) IncrementBatch(items []uint64) { c.sk.UpdateBatch(items, 1) }

// QueryBatch writes the estimate of items[j] into dst[j] and returns dst,
// appending if dst is short (pass nil to allocate).
//
//salsa:hotpath
func (c *CountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	return c.sk.QueryBatch(items, dst)
}

// UpdateBytes and QueryBytes are Update/Query for byte-slice keys.
//
//salsa:hotpath
func (c *CountMin) UpdateBytes(key []byte, count int64) { c.sk.Update(KeyBytes(key), count) }

// QueryBytes returns the frequency estimate for a byte-slice key.
//
//salsa:hotpath
func (c *CountMin) QueryBytes(key []byte) uint64 { return c.sk.Query(KeyBytes(key)) }

// MemoryBits returns the sketch footprint in bits, including the SALSA
// merge-encoding overhead.
func (c *CountMin) MemoryBits() int { return c.sk.SizeBits() }

// Depth and Width return the sketch geometry.
func (c *CountMin) Depth() int { return c.sk.Depth() }

// Width returns the per-row slot count.
func (c *CountMin) Width() int { return c.sk.Width() }

// Options returns the configuration the sketch was built with.
func (c *CountMin) Options() Options { return c.opt }

// Merge folds other into c, yielding a sketch of the union stream s(A∪B).
// Both sketches must share Options (including Seed).
func (c *CountMin) Merge(other *CountMin) { c.sk.MergeFrom(other.sk) }

// Subtract removes other from c, yielding s(A\B). Valid in the Strict
// Turnstile model (MergeSum) when other's stream is contained in c's.
func (c *CountMin) Subtract(other *CountMin) { c.sk.SubtractFrom(other.sk) }

// Distinct estimates the number of distinct items with Linear Counting over
// the rows' zero-counter fractions (§III), using the paper's optimistic
// merged-counter heuristic for SALSA rows. It fails once no counters are
// zero (load beyond Linear Counting's range).
func (c *CountMin) Distinct() (float64, error) { return c.sk.DistinctLinearCounting() }

// Monitor couples a CountMin with a top-k heap for one-pass heavy-hitter
// tracking (§III, "Finding Heavy Hitters"): each processed item is queried
// and offered to the heap.
type Monitor struct {
	cm   *CountMin
	heap *topk.Heap
}

// buildMonitor realizes a MonitorOf leaf.
func buildMonitor(opt Options, k int) (*Monitor, error) {
	if err := validateTrackerK("monitor", k); err != nil {
		return nil, err
	}
	cm, err := buildCountMin(opt, true)
	if err != nil {
		return nil, err
	}
	return &Monitor{cm: cm, heap: topk.New(k)}, nil
}

// NewMonitor returns a Monitor tracking the k items with the largest
// estimates over the given sketch options.
//
// Deprecated: Use Build(MonitorOf(opt, k)).
func NewMonitor(opt Options, k int) *Monitor {
	return mustSketch(buildMonitor(opt, k))
}

// Process records one occurrence of item and refreshes its heap entry.
func (m *Monitor) Process(item uint64) { m.Update(item, 1) }

// Update records count occurrences of item and refreshes its heap entry;
// with it Monitor satisfies Sketch and can back a Sharded tracker.
func (m *Monitor) Update(item uint64, count int64) {
	m.cm.Update(item, count)
	m.heap.Offer(item, int64(m.cm.Query(item)))
}

// UpdateBatch records count occurrences of every item, in order. The heap
// refresh couples items, so this is a per-item loop kept for the Sketch
// interface; identical to sequential Updates.
func (m *Monitor) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		m.Update(x, count)
	}
}

// MemoryBits returns the underlying sketch footprint in bits.
func (m *Monitor) MemoryBits() int { return m.cm.MemoryBits() }

// Sketch exposes the underlying CountMin for point queries.
func (m *Monitor) Sketch() *CountMin { return m.cm }

// ItemCount is a tracked item with its frequency estimate.
type ItemCount struct {
	Item  uint64
	Count int64
}

// Top returns the tracked items in descending estimate order.
func (m *Monitor) Top() []ItemCount {
	entries := m.heap.Items()
	out := make([]ItemCount, len(entries))
	for i, e := range entries {
		out[i] = ItemCount{Item: e.Item, Count: e.Count}
	}
	return out
}

// HeavyHitters returns the tracked items whose estimate is at least
// phi times the volume processed so far.
func (m *Monitor) HeavyHitters(phi float64, volume uint64) []ItemCount {
	threshold := phi * float64(volume)
	var out []ItemCount
	for _, e := range m.Top() {
		if float64(e.Count) >= threshold {
			out = append(out, e)
		}
	}
	return out
}
