package salsa

import "testing"

// envelopeTagSeeds maps every universal-envelope tag to the name of a
// universalTopologies entry whose Marshal output carries that tag — the
// compile-time ledger that the FuzzUnmarshalUniversal corpus seeds
// every decodable tag. The envelopetag analyzer (cmd/salsalint)
// requires each tag* constant to appear here, so adding a tag without
// extending the fuzz corpus is un-mergeable;
// TestEnvelopeTagSeedsCoverUniversalCorpus pins the map's truthfulness
// (each named topology really marshals to its tag) at run time.
var envelopeTagSeeds = map[byte]string{
	tagCountMin:            "countmin-salsa",
	tagCountSketch:         "countsketch-salsa",
	tagMonitor:             "monitor",
	tagTopK:                "topk",
	tagWindowedCountMin:    "windowed-countmin",
	tagWindowedCountSketch: "windowed-countsketch",
	tagWindowedMonitor:     "windowed-monitor",
	tagSharded:             "sharded-countmin",
	tagUnivMon:             "univmon-salsa",
	tagAEE:                 "aee-salsa",
	tagDistinct:            "distinct",
	tagColdFilter:          "coldfilter-cms",
	tagPyramid:             "pyramid",
	tagWindowedDistinct:    "windowed-distinct",
	tagEpoch:               "epoch-countmin",
}

// TestEnvelopeTagSeedsCoverUniversalCorpus proves envelopeTagSeeds
// honest in both directions: every entry names a universalTopologies
// spec that marshals to exactly that tag, and every tag the corpus
// emits is claimed by an entry — so the static ledger and the fuzz
// corpus cannot drift apart silently.
func TestEnvelopeTagSeedsCoverUniversalCorpus(t *testing.T) {
	tagByName := make(map[string]byte)
	seen := make(map[byte]bool)
	for _, tc := range universalTopologies() {
		s := MustBuild(tc.spec)
		ingestRoundTrip(s, roundTripItems[:1200])
		blob, err := Marshal(s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(blob) < 6 {
			t.Fatalf("%s: envelope too short (%d bytes)", tc.name, len(blob))
		}
		tagByName[tc.name] = blob[5]
		seen[blob[5]] = true
	}
	for tag, name := range envelopeTagSeeds {
		got, ok := tagByName[name]
		if !ok {
			t.Errorf("envelopeTagSeeds[%d] names %q, which is not a universalTopologies entry", tag, name)
			continue
		}
		if got != tag {
			t.Errorf("envelopeTagSeeds[%d] names %q, but that topology marshals with tag %d", tag, name, got)
		}
	}
	for tag := range seen {
		if _, ok := envelopeTagSeeds[tag]; !ok {
			t.Errorf("the universal corpus emits tag %d, which envelopeTagSeeds does not claim", tag)
		}
	}
}

// Fuzz targets for the public decoders: corrupted or truncated sketch
// bytes must come back as an error — never a panic, and never an
// allocation disproportionate to the payload (the decoders length-check
// every declared geometry against the remaining bytes before allocating).
// The corpus is seeded with valid Marshal outputs of every serializable
// mode, so mutations explore near-valid payloads rather than random noise.

// fuzzSeedsCountMin marshals one CountMin per serializable configuration.
func fuzzSeedsCountMin(f *testing.F) {
	data := []uint64{1, 2, 3, 3, 3, 7, 1 << 40}
	for _, opt := range []Options{
		{Width: 64, Seed: 5},
		{Width: 64, Mode: ModeBaseline, Seed: 5},
		{Width: 64, CompactEncoding: true, Seed: 5},
		{Width: 64, Merge: MergeSum, Depth: 2, Seed: 5},
	} {
		cm := NewCountMin(opt)
		cm.IncrementBatch(data)
		blob, err := cm.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	cu := NewConservativeUpdate(Options{Width: 64, Seed: 6})
	cu.IncrementBatch(data)
	blob, err := cu.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("not a sketch"))
}

// FuzzUnmarshalCountMin: UnmarshalCountMin must reject arbitrary bytes
// with an error, and anything it accepts must be a live, bounded sketch.
func FuzzUnmarshalCountMin(f *testing.F) {
	fuzzSeedsCountMin(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cm, err := UnmarshalCountMin(data)
		if err != nil {
			return
		}
		// A decoded sketch's backing memory is bounded by the payload: the
		// decoder length-checks declared geometry against the bytes.
		if cm.MemoryBits() > 64*len(data)+1024 {
			t.Fatalf("decoded sketch claims %d bits from a %d-byte payload", cm.MemoryBits(), len(data))
		}
		cm.Increment(1) // decoded sketches must be operational
		if cm.Query(1) == 0 {
			t.Fatal("decoded sketch dropped an update")
		}
		if _, err := cm.MarshalBinary(); err != nil {
			t.Fatalf("decoded sketch cannot re-marshal: %v", err)
		}
	})
}

// FuzzUnmarshalCountSketch is FuzzUnmarshalCountMin for the signed decoder.
func FuzzUnmarshalCountSketch(f *testing.F) {
	data := []uint64{1, 2, 3, 3, 3, 7, 1 << 40}
	for _, opt := range []Options{
		{Width: 64, Seed: 5},
		{Width: 64, Mode: ModeBaseline, Seed: 5},
		{Width: 64, CompactEncoding: true, Seed: 5},
		{Width: 64, Depth: 3, Seed: 5},
	} {
		cs := NewCountSketch(opt)
		cs.UpdateBatch(data, -2)
		blob, err := cs.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("not a sketch"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := UnmarshalCountSketch(data)
		if err != nil {
			return
		}
		if cs.MemoryBits() > 64*len(data)+1024 {
			t.Fatalf("decoded sketch claims %d bits from a %d-byte payload", cs.MemoryBits(), len(data))
		}
		cs.Update(1, -1)
		_ = cs.Query(1)
		if _, err := cs.MarshalBinary(); err != nil {
			t.Fatalf("decoded sketch cannot re-marshal: %v", err)
		}
	})
}

// FuzzUnmarshalUniversal: the universal envelope decoder must reject
// arbitrary bytes with an error — never a panic, for every type tag —
// and anything it accepts must be a live topology whose backing memory is
// bounded by the payload length. The corpus seeds one canonical payload
// per topology (windowed ones mid-rotation), so mutations explore
// near-valid composite payloads: corrupted ring odometers, mismatched
// bucket geometry, truncated nested shard envelopes, hostile heap entries.
func FuzzUnmarshalUniversal(f *testing.F) {
	for _, tc := range universalTopologies() {
		s := MustBuild(tc.spec)
		ingestRoundTrip(s, roundTripItems[:1200])
		blob, err := Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("not an envelope"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Decoded backing memory is bounded by the payload: every declared
		// geometry is length-checked before allocation. The windowed types
		// report B+2 sketches (ring + two derived merges) for B marshaled
		// buckets, and a sharded windowed payload nests that per shard,
		// hence the factor-of-3 slack on the 64-bits-per-payload-byte
		// bound of the per-type fuzz targets.
		if s.MemoryBits() > 3*64*len(data)+4096 {
			t.Fatalf("decoded topology claims %d bits from a %d-byte payload", s.MemoryBits(), len(data))
		}
		// Decoded topologies must be operational: ingest, query, tick,
		// and re-marshal without panicking.
		s.Update(1, 1)
		s.UpdateBatch([]uint64{2, 3, 5, 8, 13}, 1)
		observe(t, s, roundTripItems)
		if tk, ok := s.(interface{ Tick() }); ok {
			tk.Tick()
		}
		if _, err := Marshal(s); err != nil {
			t.Fatalf("decoded topology cannot re-marshal: %v", err)
		}
	})
}

// FuzzParseSpec: the topology-expression parser must reject arbitrary
// strings with an error — never a panic or unbounded recursion — and any
// expression it accepts must normalize to a String form the parser maps to
// itself (the grammar's canonical fixed point). Specs are not Built here:
// syntactically valid expressions may declare resource bounds at the
// builders' limits (65536 shards of 65536-bucket windows), which is
// Build's job to price, not the parser's.
func FuzzParseSpec(f *testing.F) {
	for _, tc := range universalTopologies() {
		f.Add(tc.spec.String())
	}
	f.Add("CountMin")
	f.Add(" sharded( 8 , windowed(4, 100, CMS) ) ")
	f.Add("univmon(0,0)")
	f.Add("filtered(tiered(cms))")
	f.Add("sharded(2,sharded(2,sharded(2,cms)))")
	f.Add("((((")
	f.Fuzz(func(t *testing.T, expr string) {
		opt := Options{Width: 64, Seed: 1}
		spec, err := ParseSpec(expr, opt)
		if err != nil {
			return
		}
		norm := spec.String()
		back, err := ParseSpec(norm, opt)
		if err != nil {
			t.Fatalf("normal form %q does not re-parse: %v", norm, err)
		}
		if got := back.String(); got != norm {
			t.Fatalf("String not a parser fixed point: %q -> %q", norm, got)
		}
	})
}

// FuzzKeyBytes pins the byte-key hash path (the stdin ingestion surface of
// salsatop) against panics on arbitrary input.
func FuzzKeyBytes(f *testing.F) {
	f.Add([]byte("10.0.0.1:443"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, key []byte) {
		if KeyBytes(key) != KeyBytes(key) {
			t.Fatal("KeyBytes not deterministic")
		}
	})
}
