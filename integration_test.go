package salsa

// Integration tests: end-to-end pipelines across modules, exercising the
// combinations a deployment would use rather than single components.

import (
	"math"
	"testing"

	"salsa/internal/stream"
)

// TestDistributedAggregationPipeline models the paper's merge use case
// (§V): several workers sketch disjoint partitions of a stream with shared
// seeds, serialize their sketches, and a coordinator merges the payloads
// and answers global queries.
func TestDistributedAggregationPipeline(t *testing.T) {
	const workers = 4
	opt := Options{Width: 2048, Merge: MergeSum, Seed: 77}
	full := stream.NY18.Generate(200_000, 8)
	exact := stream.NewExact()
	for _, x := range full {
		exact.Observe(x)
	}

	// Each worker sketches its shard and ships bytes.
	payloads := make([][]byte, workers)
	for wkr := 0; wkr < workers; wkr++ {
		cm := NewCountMin(opt)
		for i := wkr; i < len(full); i += workers {
			cm.Increment(full[i])
		}
		blob, err := cm.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		payloads[wkr] = blob
	}

	// Coordinator decodes and merges.
	global, err := UnmarshalCountMin(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, blob := range payloads[1:] {
		part, err := UnmarshalCountMin(blob)
		if err != nil {
			t.Fatal(err)
		}
		global.Merge(part)
	}

	// Global estimates must dominate the global truth, and the heavy
	// items must be accurate.
	for x, f := range exact.Counts() {
		if est := global.Query(x); est < f {
			t.Fatalf("item %d: merged estimate %d < truth %d", x, est, f)
		}
	}
	for _, x := range exact.TopK(10) {
		truth := float64(exact.Count(x))
		if rel := (float64(global.Query(x)) - truth) / truth; rel > 0.05 {
			t.Fatalf("heavy item %d overestimated by %.1f%%", x, rel*100)
		}
	}
}

// TestEpochChangeDetectionPipeline wires trace generation, two-epoch
// sketching, subtraction, and heavy-change extraction.
func TestEpochChangeDetectionPipeline(t *testing.T) {
	opt := Options{Width: 1 << 13, Seed: 21}
	epochA := stream.CH16.Generate(150_000, 9)
	epochB := stream.CH16.Generate(150_000, 10)
	const anomaly = uint64(424242)
	for i := 0; i < 8_000; i++ {
		epochB = append(epochB, anomaly)
	}

	det := NewChangeDetector(opt)
	truth := map[uint64]int64{}
	for _, x := range epochA {
		det.ObserveBefore(x)
		truth[x]--
	}
	for _, x := range epochB {
		det.ObserveAfter(x)
		truth[x]++
	}

	// The injected anomaly must be detected with a near-exact change.
	got := det.Change(anomaly)
	if math.Abs(float64(got-truth[anomaly])) > 0.05*float64(truth[anomaly]) {
		t.Fatalf("anomaly change %d vs truth %d", got, truth[anomaly])
	}
}

// TestMonitorAgainstUnivMon cross-checks two independent heavy-hitter
// paths — CUS+heap and UnivMon's level-0 heap — on the same stream.
func TestMonitorAgainstUnivMon(t *testing.T) {
	data := stream.NY18.Generate(150_000, 11)
	mon := NewMonitor(Options{Width: 1 << 13, Seed: 31}, 20)
	um := MustBuild(UnivMonOf(Options{Width: 1 << 11, Seed: 31}, 12, 0)).(*UnivMon)
	exact := stream.NewExact()
	for _, x := range data {
		mon.Process(x)
		um.Process(x)
		exact.Observe(x)
	}
	top := exact.TopK(5)
	inMon := map[uint64]bool{}
	for _, e := range mon.Top() {
		inMon[e.Item] = true
	}
	inUM := map[uint64]bool{}
	for _, e := range um.HeavyHitters() {
		inUM[e.Item] = true
	}
	for _, x := range top {
		if !inMon[x] {
			t.Fatalf("monitor missed top item %d", x)
		}
		if !inUM[x] {
			t.Fatalf("univmon missed top item %d", x)
		}
	}
}

// TestEqualMemoryAccuracyOrdering verifies the paper's qualitative ordering
// at equal memory on a skewed trace: SALSA CUS ≤ SALSA CMS ≤ Baseline CMS
// in mean-squared on-arrival error (Fig. 10's shape).
func TestEqualMemoryAccuracyOrdering(t *testing.T) {
	data := stream.NY18.Generate(300_000, 12)
	type contender struct {
		name string
		cm   *CountMin
	}
	contenders := []contender{
		{"baseline-cms", NewCountMin(Options{Width: 1 << 11, Mode: ModeBaseline, Seed: 41})},
		{"salsa-cms", NewCountMin(Options{Width: 1 << 13, Seed: 41})},
		{"salsa-cus", NewConservativeUpdate(Options{Width: 1 << 13, Seed: 41})},
	}
	exact := stream.NewExact()
	mse := make([]float64, len(contenders))
	for _, x := range data {
		truth := float64(exact.Observe(x))
		for i, c := range contenders {
			c.cm.Increment(x)
			d := float64(c.cm.Query(x)) - truth
			mse[i] += d * d
		}
	}
	if !(mse[2] <= mse[1] && mse[1] <= mse[0]) {
		t.Fatalf("MSE ordering violated: baseline %g, salsa-cms %g, salsa-cus %g",
			mse[0], mse[1], mse[2])
	}
}

// TestDistinctAcrossBackends checks the Linear Counting path over both
// backends against the oracle on every dataset stand-in.
func TestDistinctAcrossBackends(t *testing.T) {
	for _, ds := range stream.Datasets() {
		data := ds.Generate(100_000, 13)
		exact := stream.NewExact()
		baseline := NewCountMin(Options{Width: 1 << 14, Mode: ModeBaseline, Merge: MergeSum, Seed: 51})
		slim := NewCountMin(Options{Width: 1 << 14, Merge: MergeSum, Seed: 51})
		for _, x := range data {
			exact.Observe(x)
			baseline.Increment(x)
			slim.Increment(x)
		}
		truth := float64(exact.Distinct())
		for name, cm := range map[string]*CountMin{"baseline": baseline, "salsa": slim} {
			est, err := cm.Distinct()
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, name, err)
			}
			if math.Abs(est-truth)/truth > 0.1 {
				t.Fatalf("%s/%s: distinct %f vs %f", ds.Name, name, est, truth)
			}
		}
	}
}
