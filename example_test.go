package salsa_test

import (
	"errors"
	"fmt"

	"salsa"
)

// Build realizes a Spec: the sketch kind is a leaf, the deployment shape
// is decorators, and construction errors are returned, not panicked.
func ExampleBuild() {
	s, err := salsa.Build(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: 1}))
	if err != nil {
		panic(err)
	}
	cm := s.(*salsa.CountMin)
	for i := 0; i < 42; i++ {
		cm.Increment(7)
	}
	cm.Update(8, 5)
	fmt.Println(cm.Query(7), cm.Query(8), cm.Query(9))
	// Output: 42 5 0
}

// Orthogonal layers compose: the same CountMinOf leaf serves windowed,
// sharded, and windowed-and-sharded deployments.
func ExampleBuild_composed() {
	opt := salsa.Options{Width: 1 << 12, Seed: 1}
	s, err := salsa.Build(salsa.ShardedBy(salsa.Windowed(salsa.CountMinOf(opt), 4, 100_000), 8))
	if err != nil {
		panic(err)
	}
	w := s.(*salsa.ShardedWindowedCountMin)
	w.Update(7, 3) // safe for concurrent use
	fmt.Println(w.Query(7), w.Shards())
	// Output: 3 8
}

// Invalid Options and unsupported compositions are errors, never panics.
func ExampleBuild_errors() {
	_, err := salsa.Build(salsa.CountMinOf(salsa.Options{Width: 100}))
	fmt.Println(err)
	_, err = salsa.Build(salsa.Windowed(salsa.CountSketchOf(salsa.Options{Width: 64, Mode: salsa.ModeTango}), 4, 100))
	fmt.Println(err)
	// Output:
	// salsa: Width 100 must be a positive power of two
	// salsa: CountSketch does not support ModeTango
}

// Marshal writes any built topology into the universal self-describing
// envelope; Unmarshal restores it without advance knowledge of its shape.
func ExampleMarshal() {
	w := salsa.MustBuild(salsa.Windowed(salsa.CountMinOf(salsa.Options{Width: 1 << 10, Seed: 1}), 4, 1000)).(*salsa.WindowedCountMin)
	for i := 0; i < 2500; i++ {
		w.Increment(uint64(i % 10)) // two rotations, mid-third-bucket
	}
	blob, err := salsa.Marshal(w)
	if err != nil {
		panic(err)
	}
	back, err := salsa.Unmarshal(blob)
	if err != nil {
		panic(err)
	}
	decoded := back.(*salsa.WindowedCountMin)
	fmt.Println(decoded.Query(3) == w.Query(3), decoded.Rotations())
	// Output: true 2
}

// A decoded sketch is fully operational and merges with seed-sharing
// peers from other processes — the paper's distributed use case.
func ExampleUnmarshal() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	worker := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	worker.Update(3, 12)
	blob, _ := salsa.Marshal(worker)

	// ...ships to the coordinator process...
	decoded, _ := salsa.Unmarshal(blob)
	global := decoded.(*salsa.CountMin)
	peer := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	peer.Update(3, 8)
	global.Merge(peer)
	fmt.Println(global.Query(3))
	// Output: 20
}

// ParseSpec is the textual form of the algebra (salsabench -topology).
func ExampleParseSpec() {
	spec, err := salsa.ParseSpec("sharded(8,windowed(4,65536,cms))", salsa.Options{Width: 1 << 12})
	if err != nil {
		panic(err)
	}
	fmt.Println(spec)
	s, err := salsa.Build(spec)
	if err != nil {
		panic(err)
	}
	_, ok := s.(*salsa.ShardedWindowedCountMin)
	fmt.Println(ok)
	// Output:
	// sharded(8,windowed(4,65536,cms))
	// true
}

func ExampleOptions_Validate() {
	fmt.Println(salsa.Options{Width: 1 << 10}.Validate())
	fmt.Println(salsa.Options{Width: 640}.Validate())
	// Output:
	// <nil>
	// salsa: Width 640 must be a positive power of two
}

func ExampleCountMin_UpdateBytes() {
	cm := salsa.MustBuild(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.CountMin)
	flow := []byte("10.0.0.1:443 -> 10.0.0.2:55000 tcp")
	cm.UpdateBytes(flow, 3)
	fmt.Println(cm.QueryBytes(flow))
	// Output: 3
}

func ExampleCountSketchOf() {
	cs := salsa.MustBuild(salsa.CountSketchOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.CountSketch)
	cs.Update(1, 10)
	cs.Update(1, -4) // turnstile: decrements allowed
	fmt.Println(cs.Query(1))
	// Output: 6
}

func ExampleChangeDetector() {
	det := salsa.NewChangeDetector(salsa.Options{Width: 1 << 12, Seed: 1})
	for i := 0; i < 9; i++ {
		det.ObserveBefore(5)
	}
	for i := 0; i < 2; i++ {
		det.ObserveAfter(5)
	}
	fmt.Println(det.Change(5))
	// Output: -7
}

func ExampleMonitorOf() {
	m := salsa.MustBuild(salsa.MonitorOf(salsa.Options{Width: 1 << 12, Seed: 1}, 2)).(*salsa.Monitor)
	for item, count := range map[uint64]int{1: 5, 2: 9, 3: 1} {
		for i := 0; i < count; i++ {
			m.Process(item)
		}
	}
	for _, hh := range m.Top() {
		fmt.Println(hh.Item, hh.Count)
	}
	// Output:
	// 2 9
	// 1 5
}

func ExampleCountMin_Merge() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	a := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	b := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin) // must share Options, including Seed
	a.Update(1, 4)
	b.Update(1, 6)
	a.Merge(b)
	fmt.Println(a.Query(1))
	// Output: 10
}

// UnivMon answers entropy, frequency moments, cardinality, and heavy
// hitters from one universal sketch — a leaf of the same Spec algebra.
func ExampleUnivMonOf() {
	u := salsa.MustBuild(salsa.UnivMonOf(salsa.Options{Width: 1 << 12, Seed: 1}, 8, 50)).(*salsa.UnivMon)
	for i := 0; i < 4000; i++ {
		u.Process(uint64(i % 100)) // 100 items, 40 occurrences each
	}
	fmt.Printf("%d %.1f %.0f\n", u.Volume(), u.Entropy(), u.Distinct())
	// Output: 4000 6.2 108
}

// AEE keeps full Count-Min accuracy while the stream is small and
// downsamples adaptively as counters fill; Query rescales by 1/p.
func ExampleAEEOf() {
	a := salsa.MustBuild(salsa.AEEOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.AEE)
	for i := 0; i < 42; i++ {
		a.Process(7)
	}
	fmt.Println(a.Query(7), a.SampleProb())
	// Output: 42 1
}

// DistinctOf turns a Count-Min layout into a Linear Counting cardinality
// estimator; StdError gives the paper's published accuracy at any load.
func ExampleDistinctOf() {
	d := salsa.MustBuild(salsa.DistinctOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.Distinct)
	for i := 0; i < 5000; i++ {
		d.Increment(uint64(i % 300))
	}
	est, err := d.Estimate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f\n", est)
	// Output: 299
}

// Filtered wraps any CountMin-family spec in a ColdFilter: the long tail
// of cold items is absorbed by two cheap filter layers, and only items
// that prove themselves hot reach the (accurate) stage-2 sketch.
func ExampleFiltered() {
	cf := salsa.MustBuild(salsa.Filtered(salsa.ConservativeOf(salsa.Options{Width: 1 << 12, Seed: 1}))).(*salsa.ColdFilter)
	for i := 0; i < 1000; i++ {
		cf.Process(9) // hot: passes both filter layers into stage 2
	}
	cf.Process(1234) // cold: never leaves the filter
	fmt.Println(cf.Query(9), cf.Query(1234), cf.Stage2Volume())
	// Output: 1000 1 730
}

// Tiered wraps a Count-Min spec in Pyramid's layered counters: low-order
// bits live in dense small counters, overflows carry into sparser layers.
func ExampleTiered() {
	p := salsa.MustBuild(salsa.Tiered(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: 1}))).(*salsa.Pyramid)
	p.Update(7, 300)
	fmt.Println(p.Query(7), p.Layers())
	// Output: 300 6
}

// Compositions without a sound semantics come back as a typed
// *CompositionError naming the decorator, inner spec, and reason.
func ExampleCompositionError() {
	_, err := salsa.Build(salsa.Windowed(salsa.AEEOf(salsa.Options{Width: 1 << 10}), 4, 1000))
	var cerr *salsa.CompositionError
	if errors.As(err, &cerr) {
		fmt.Println(cerr.Decorator, cerr.Inner)
	}
	// Output: Windowed aee
}

// EpochShardedBy is the lock-free ingestion layer: each writer appends
// to a private sketch, and a drain (Advance, or a background
// AutoAdvance) folds retired privates into the shared read view.
// Pending is the staleness gauge: retired-but-undrained updates.
func ExampleEpochShardedBy() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	e := salsa.MustBuild(salsa.EpochShardedBy(salsa.CountMinOf(opt), 2)).(*salsa.EpochCountMin)

	w := e.NewWriter(64) // one per goroutine: no lock, no CAS
	for i := 0; i < 42; i++ {
		w.Increment(7)
	}
	w.Flush()
	fmt.Println(e.Query(7), e.Pending()) // flushed but not yet drained
	e.Advance()
	fmt.Println(e.Query(7), e.Pending()) // drained into the view
	w.Close()
	// Output:
	// 0 42
	// 42 0
}

// Epoch layers compose over Tick-driven windows: Tick cuts an epoch
// before rotating, so everything a writer flushed lands wholly in the
// pre-Tick bucket — never split across a rotation.
func ExampleEpochShardedBy_windowed() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	s := salsa.MustBuild(salsa.EpochShardedBy(salsa.Windowed(salsa.CountMinOf(opt), 2, 0), 2))
	e := s.(*salsa.EpochWindowedCountMin)

	w := e.NewWriter(8)
	w.Increment(7)
	w.Flush()
	e.Tick() // drains the epoch, then rotates
	fmt.Println(e.Query(7), e.Rotations())
	w.Close()
	// Output: 1 1
}
