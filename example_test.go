package salsa_test

import (
	"fmt"

	"salsa"
)

func ExampleNewCountMin() {
	cm := salsa.NewCountMin(salsa.Options{Width: 1 << 12, Seed: 1})
	for i := 0; i < 42; i++ {
		cm.Increment(7)
	}
	cm.Update(8, 5)
	fmt.Println(cm.Query(7), cm.Query(8), cm.Query(9))
	// Output: 42 5 0
}

func ExampleCountMin_UpdateBytes() {
	cm := salsa.NewCountMin(salsa.Options{Width: 1 << 12, Seed: 1})
	flow := []byte("10.0.0.1:443 -> 10.0.0.2:55000 tcp")
	cm.UpdateBytes(flow, 3)
	fmt.Println(cm.QueryBytes(flow))
	// Output: 3
}

func ExampleNewCountSketch() {
	cs := salsa.NewCountSketch(salsa.Options{Width: 1 << 12, Seed: 1})
	cs.Update(1, 10)
	cs.Update(1, -4) // turnstile: decrements allowed
	fmt.Println(cs.Query(1))
	// Output: 6
}

func ExampleChangeDetector() {
	det := salsa.NewChangeDetector(salsa.Options{Width: 1 << 12, Seed: 1})
	for i := 0; i < 9; i++ {
		det.ObserveBefore(5)
	}
	for i := 0; i < 2; i++ {
		det.ObserveAfter(5)
	}
	fmt.Println(det.Change(5))
	// Output: -7
}

func ExampleMonitor() {
	m := salsa.NewMonitor(salsa.Options{Width: 1 << 12, Seed: 1}, 2)
	for item, count := range map[uint64]int{1: 5, 2: 9, 3: 1} {
		for i := 0; i < count; i++ {
			m.Process(item)
		}
	}
	for _, hh := range m.Top() {
		fmt.Println(hh.Item, hh.Count)
	}
	// Output:
	// 2 9
	// 1 5
}

func ExampleCountMin_Merge() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	a := salsa.NewCountMin(opt)
	b := salsa.NewCountMin(opt) // must share Options, including Seed
	a.Update(1, 4)
	b.Update(1, 6)
	a.Merge(b)
	fmt.Println(a.Query(1))
	// Output: 10
}

func ExampleUnmarshalCountMin() {
	cm := salsa.NewCountMin(salsa.Options{Width: 1 << 12, Seed: 1})
	cm.Update(3, 12)
	blob, _ := cm.MarshalBinary()
	back, _ := salsa.UnmarshalCountMin(blob)
	fmt.Println(back.Query(3))
	// Output: 12
}
