package salsa_test

import (
	"fmt"

	"salsa"
)

// Build realizes a Spec: the sketch kind is a leaf, the deployment shape
// is decorators, and construction errors are returned, not panicked.
func ExampleBuild() {
	s, err := salsa.Build(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: 1}))
	if err != nil {
		panic(err)
	}
	cm := s.(*salsa.CountMin)
	for i := 0; i < 42; i++ {
		cm.Increment(7)
	}
	cm.Update(8, 5)
	fmt.Println(cm.Query(7), cm.Query(8), cm.Query(9))
	// Output: 42 5 0
}

// Orthogonal layers compose: the same CountMinOf leaf serves windowed,
// sharded, and windowed-and-sharded deployments.
func ExampleBuild_composed() {
	opt := salsa.Options{Width: 1 << 12, Seed: 1}
	s, err := salsa.Build(salsa.ShardedBy(salsa.Windowed(salsa.CountMinOf(opt), 4, 100_000), 8))
	if err != nil {
		panic(err)
	}
	w := s.(*salsa.ShardedWindowedCountMin)
	w.Update(7, 3) // safe for concurrent use
	fmt.Println(w.Query(7), w.Shards())
	// Output: 3 8
}

// Invalid Options and unsupported compositions are errors, never panics.
func ExampleBuild_errors() {
	_, err := salsa.Build(salsa.CountMinOf(salsa.Options{Width: 100}))
	fmt.Println(err)
	_, err = salsa.Build(salsa.Windowed(salsa.CountSketchOf(salsa.Options{Width: 64, Mode: salsa.ModeTango}), 4, 100))
	fmt.Println(err)
	// Output:
	// salsa: Width 100 must be a positive power of two
	// salsa: CountSketch does not support ModeTango
}

// Marshal writes any built topology into the universal self-describing
// envelope; Unmarshal restores it without advance knowledge of its shape.
func ExampleMarshal() {
	w := salsa.MustBuild(salsa.Windowed(salsa.CountMinOf(salsa.Options{Width: 1 << 10, Seed: 1}), 4, 1000)).(*salsa.WindowedCountMin)
	for i := 0; i < 2500; i++ {
		w.Increment(uint64(i % 10)) // two rotations, mid-third-bucket
	}
	blob, err := salsa.Marshal(w)
	if err != nil {
		panic(err)
	}
	back, err := salsa.Unmarshal(blob)
	if err != nil {
		panic(err)
	}
	decoded := back.(*salsa.WindowedCountMin)
	fmt.Println(decoded.Query(3) == w.Query(3), decoded.Rotations())
	// Output: true 2
}

// A decoded sketch is fully operational and merges with seed-sharing
// peers from other processes — the paper's distributed use case.
func ExampleUnmarshal() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	worker := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	worker.Update(3, 12)
	blob, _ := salsa.Marshal(worker)

	// ...ships to the coordinator process...
	decoded, _ := salsa.Unmarshal(blob)
	global := decoded.(*salsa.CountMin)
	peer := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	peer.Update(3, 8)
	global.Merge(peer)
	fmt.Println(global.Query(3))
	// Output: 20
}

// ParseSpec is the textual form of the algebra (salsabench -topology).
func ExampleParseSpec() {
	spec, err := salsa.ParseSpec("sharded(8,windowed(4,65536,cms))", salsa.Options{Width: 1 << 12})
	if err != nil {
		panic(err)
	}
	fmt.Println(spec)
	s, err := salsa.Build(spec)
	if err != nil {
		panic(err)
	}
	_, ok := s.(*salsa.ShardedWindowedCountMin)
	fmt.Println(ok)
	// Output:
	// sharded(8,windowed(4,65536,cms))
	// true
}

func ExampleOptions_Validate() {
	fmt.Println(salsa.Options{Width: 1 << 10}.Validate())
	fmt.Println(salsa.Options{Width: 640}.Validate())
	// Output:
	// <nil>
	// salsa: Width 640 must be a positive power of two
}

func ExampleCountMin_UpdateBytes() {
	cm := salsa.MustBuild(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.CountMin)
	flow := []byte("10.0.0.1:443 -> 10.0.0.2:55000 tcp")
	cm.UpdateBytes(flow, 3)
	fmt.Println(cm.QueryBytes(flow))
	// Output: 3
}

func ExampleCountSketchOf() {
	cs := salsa.MustBuild(salsa.CountSketchOf(salsa.Options{Width: 1 << 12, Seed: 1})).(*salsa.CountSketch)
	cs.Update(1, 10)
	cs.Update(1, -4) // turnstile: decrements allowed
	fmt.Println(cs.Query(1))
	// Output: 6
}

func ExampleChangeDetector() {
	det := salsa.NewChangeDetector(salsa.Options{Width: 1 << 12, Seed: 1})
	for i := 0; i < 9; i++ {
		det.ObserveBefore(5)
	}
	for i := 0; i < 2; i++ {
		det.ObserveAfter(5)
	}
	fmt.Println(det.Change(5))
	// Output: -7
}

func ExampleMonitorOf() {
	m := salsa.MustBuild(salsa.MonitorOf(salsa.Options{Width: 1 << 12, Seed: 1}, 2)).(*salsa.Monitor)
	for item, count := range map[uint64]int{1: 5, 2: 9, 3: 1} {
		for i := 0; i < count; i++ {
			m.Process(item)
		}
	}
	for _, hh := range m.Top() {
		fmt.Println(hh.Item, hh.Count)
	}
	// Output:
	// 2 9
	// 1 5
}

func ExampleCountMin_Merge() {
	opt := salsa.Options{Width: 1 << 12, Merge: salsa.MergeSum, Seed: 1}
	a := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	b := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin) // must share Options, including Seed
	a.Update(1, 4)
	b.Update(1, 6)
	a.Merge(b)
	fmt.Println(a.Query(1))
	// Output: 10
}
