package salsa

import (
	"runtime"
	"sync"
	"testing"

	"salsa/internal/stream"
)

// --- batch/sequential equivalence -----------------------------------------

// TestBatchEqualsSequential pins the public batch contract on Zipf streams:
// UpdateBatch leaves a sketch answering identically to per-item Updates, for
// every backend mode and both CountMin rules.
func TestBatchEqualsSequential(t *testing.T) {
	data := stream.Zipf(80000, 4000, 1.0, 21)
	builds := map[string]func() Sketch{
		"CountMinSALSA":      func() Sketch { return NewCountMin(Options{Width: 1 << 10, Seed: 9}) },
		"CountMinBaseline":   func() Sketch { return NewCountMin(Options{Width: 1 << 10, Mode: ModeBaseline, Seed: 9}) },
		"CountMinTango":      func() Sketch { return NewCountMin(Options{Width: 1 << 10, Mode: ModeTango, Seed: 9}) },
		"CountMinTangoSum":   func() Sketch { return NewCountMin(Options{Width: 1 << 10, Mode: ModeTango, Merge: MergeSum, Seed: 9}) },
		"CountMinCompact":    func() Sketch { return NewCountMin(Options{Width: 1 << 10, CompactEncoding: true, Seed: 9}) },
		"ConservativeUpdate": func() Sketch { return NewConservativeUpdate(Options{Width: 1 << 10, Seed: 9}) },
		"ConservativeTango":  func() Sketch { return NewConservativeUpdate(Options{Width: 1 << 10, Mode: ModeTango, Seed: 9}) },
		"CountSketch":        func() Sketch { return NewCountSketch(Options{Width: 1 << 10, Seed: 9}) },
		"Monitor":            func() Sketch { return NewMonitor(Options{Width: 1 << 10, Seed: 9}, 32) },
		// Windowed types: the 777-item test batches straddle the 2000-item
		// rotation boundaries, so this also pins the batch-splitting path.
		"WindowedCountMin": func() Sketch {
			return NewWindowedCountMin(Options{Width: 1 << 10, Seed: 9}, 4, 2000)
		},
		"WindowedTango": func() Sketch {
			return NewWindowedCountMin(Options{Width: 1 << 10, Mode: ModeTango, Seed: 9}, 4, 2000)
		},
		"WindowedConservative": func() Sketch {
			return NewWindowedConservativeUpdate(Options{Width: 1 << 10, Seed: 9}, 4, 2000)
		},
		"WindowedCountSketch": func() Sketch {
			return NewWindowedCountSketch(Options{Width: 1 << 10, Seed: 9}, 4, 2000)
		},
		"WindowedMonitor": func() Sketch {
			return NewWindowedMonitor(Options{Width: 1 << 10, Seed: 9}, 32, 4, 2000)
		},
	}
	type pointQuery interface{ Query(uint64) uint64 }
	type signedQuery interface{ Query(uint64) int64 }
	for name, build := range builds {
		seq, bat := build(), build()
		for _, x := range data {
			seq.Update(x, 1)
		}
		for off := 0; off < len(data); off += 777 {
			end := off + 777
			if end > len(data) {
				end = len(data)
			}
			bat.UpdateBatch(data[off:end], 1)
		}
		for x := uint64(0); x < 4000; x++ {
			switch s := seq.(type) {
			case pointQuery:
				if a, b := s.Query(x), bat.(pointQuery).Query(x); a != b {
					t.Fatalf("%s: item %d: sequential %d != batch %d", name, x, a, b)
				}
			case signedQuery:
				if a, b := s.Query(x), bat.(signedQuery).Query(x); a != b {
					t.Fatalf("%s: item %d: sequential %d != batch %d", name, x, a, b)
				}
			case *Monitor:
				if a, b := s.Sketch().Query(x), bat.(*Monitor).Sketch().Query(x); a != b {
					t.Fatalf("%s: item %d: sequential %d != batch %d", name, x, a, b)
				}
			}
		}
	}
}

// TestShardedBatchEqualsSequential pins the sharded batch contract: for a
// fixed seed, IncrementBatch routes and applies exactly like a sequential
// loop of single Increments, so both Sharded instances answer identically
// (and QueryBatch agrees with Query).
func TestShardedBatchEqualsSequential(t *testing.T) {
	data := stream.Zipf(100000, 5000, 1.0, 33)
	for name, build := range map[string]func() *ShardedCountMin{
		"SALSA": func() *ShardedCountMin { return NewShardedCountMin(Options{Width: 1 << 10, Seed: 12}, 8) },
		"Tango": func() *ShardedCountMin {
			return NewShardedCountMin(Options{Width: 1 << 10, Mode: ModeTango, Seed: 12}, 8)
		},
		"Windowed": nil, // handled below; keeps the subtest names aligned
	} {
		t.Run(name, func(t *testing.T) {
			type queryable interface {
				Increment(uint64)
				IncrementBatch([]uint64)
				Query(uint64) uint64
				QueryBatch([]uint64, []uint64) []uint64
			}
			var seq, bat queryable
			if build != nil {
				seq, bat = build(), build()
			} else {
				opt := Options{Width: 1 << 10, Seed: 12}
				// Per-shard rotation every 3000 substream items: batches
				// straddle rotation boundaries shard by shard.
				seq = NewShardedWindowedCountMin(opt, 3, 3000, 8)
				bat = NewShardedWindowedCountMin(opt, 3, 3000, 8)
			}
			for _, x := range data {
				seq.Increment(x)
			}
			for off := 0; off < len(data); off += 4096 {
				end := off + 4096
				if end > len(data) {
					end = len(data)
				}
				bat.IncrementBatch(data[off:end])
			}
			items := make([]uint64, 5000)
			for i := range items {
				items[i] = uint64(i)
			}
			est := bat.QueryBatch(items, nil)
			for _, x := range items {
				if a, b := seq.Query(x), bat.Query(x); a != b {
					t.Fatalf("item %d: sequential %d != batch %d", x, a, b)
				}
				if est[x] != bat.Query(x) {
					t.Fatalf("item %d: QueryBatch %d != Query %d", x, est[x], bat.Query(x))
				}
			}
		})
	}
}

// TestShardedMergeEqualsSequential: shards built with one shared seed and
// sum-merge are mergeable, and because every item lives in exactly one
// shard, folding all shards into a single sketch reproduces the sequential
// single-update sketch's estimates exactly — in Baseline and SALSA modes.
func TestShardedMergeEqualsSequential(t *testing.T) {
	data := stream.Zipf(120000, 5000, 1.0, 29)
	for _, mode := range []Mode{ModeBaseline, ModeSALSA} {
		opt := Options{Width: 1 << 10, Mode: mode, Merge: MergeSum, Seed: 5}
		seq := NewCountMin(opt)
		for _, x := range data {
			seq.Increment(x)
		}
		sh := NewSharded(8, 999, func(int) *CountMin { return NewCountMin(opt) })
		sh.IncrementBatch(data)
		merged := NewCountMin(opt)
		for i := 0; i < sh.Shards(); i++ {
			merged.Merge(sh.Shard(i))
		}
		for x := uint64(0); x < 5000; x++ {
			if a, b := seq.Query(x), merged.Query(x); a != b {
				t.Fatalf("mode %v: item %d: sequential %d != merged shards %d", mode, x, a, b)
			}
		}
	}
}

// TestWriterEqualsUnbuffered: per-goroutine write buffers reorder across
// shards but preserve per-shard arrival order, so after Flush the sketch
// answers identically to unbuffered ingestion.
func TestWriterEqualsUnbuffered(t *testing.T) {
	data := stream.Zipf(60000, 3000, 1.0, 41)
	opt := Options{Width: 1 << 10, Seed: 17}
	direct := NewShardedCountMin(opt, 4)
	buffered := NewShardedCountMin(opt, 4)
	w := buffered.NewWriter(64)
	for i, x := range data {
		direct.Increment(x)
		if i%97 == 0 {
			w.Update(x, 1) // count==1 goes through the buffer
		} else {
			w.Increment(x)
		}
	}
	w.Flush()
	for x := uint64(0); x < 3000; x++ {
		if a, b := direct.Query(x), buffered.Query(x); a != b {
			t.Fatalf("item %d: direct %d != buffered %d", x, a, b)
		}
	}
}

// --- race hammer tests (run with -race) ------------------------------------

// hammer fires fn from 8 goroutines with disjoint worker ids.
func hammer(t *testing.T, fn func(worker int)) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn(g)
		}(g)
	}
	wg.Wait()
}

// TestShardedCountMinHammer mixes single updates, batches, point queries
// and batch queries from 8 goroutines; afterwards every estimate must hold
// the CountMin overestimate guarantee against the known truth. perG is a
// multiple of universe so every item's exact count is at least
// 8·perG/universe regardless of where each goroutine's loop ends.
func TestShardedCountMinHammer(t *testing.T) {
	const perG, universe = 4096, 64
	for name, s := range map[string]*ShardedCountMin{
		"CountMin":     NewShardedCountMin(Options{Width: 1 << 10, Seed: 7}, 8),
		"Conservative": NewShardedConservativeUpdate(Options{Width: 1 << 10, Seed: 7}, 8),
	} {
		hammer(t, func(g int) {
			batch := make([]uint64, 0, 128)
			qbuf := make([]uint64, 0, 16)
			for i := 0; i < perG; i++ {
				x := uint64(i % universe)
				// universe divides 4 evenly, so i%4 alone would pin each
				// item to one op; adding the cycle number rotates the op
				// mix across occurrences of every item.
				switch (i + i/universe) % 4 {
				case 0:
					s.Increment(x)
				case 1:
					batch = append(batch, x)
					if len(batch) == cap(batch) {
						s.IncrementBatch(batch)
						batch = batch[:0]
					} else {
						s.Update(x, 1) // keep the per-item tally exact
					}
				case 2:
					s.Update(x, 1)
					_ = s.Query(x)
				default:
					s.Increment(x)
					qbuf = s.QueryBatch([]uint64{x, x + 1}, qbuf[:0])
				}
			}
			s.IncrementBatch(batch)
		})
		truth := uint64(8 * perG / universe)
		for x := uint64(0); x < universe; x++ {
			if got := s.Query(x); got < truth {
				t.Fatalf("%s: item %d: estimate %d < truth %d", name, x, got, truth)
			}
		}
		if s.MemoryBits() == 0 {
			t.Fatalf("%s: no memory accounted", name)
		}
	}
}

// TestShardedCountSketchHammer checks the signed path races clean and stays
// plausibly near truth (Count Sketch is unbiased, not an overestimate).
func TestShardedCountSketchHammer(t *testing.T) {
	s := NewShardedCountSketch(Options{Width: 1 << 12, Seed: 13}, 8)
	const perG, universe = 4096, 64
	hammer(t, func(g int) {
		batch := make([]uint64, 0, 256)
		for i := 0; i < perG; i++ {
			batch = append(batch, uint64(i%universe))
			if len(batch) == cap(batch) {
				s.IncrementBatch(batch)
				batch = batch[:0]
			}
			if i%16 == 0 {
				_ = s.Query(uint64(i % universe))
			}
		}
		s.IncrementBatch(batch)
	})
	truth := int64(8 * perG / universe)
	for x := uint64(0); x < universe; x++ {
		got := s.Query(x)
		if got < truth/2 || got > truth*2 {
			t.Fatalf("item %d: estimate %d implausible for truth %d", x, got, truth)
		}
	}
}

// TestShardedMonitorHammer runs the heavy-hitter tracker concurrently and
// checks the merged top-k surfaces the planted heavy item.
func TestShardedMonitorHammer(t *testing.T) {
	s := NewShardedMonitor(Options{Width: 1 << 10, Seed: 23}, 16, 8)
	const heavy = uint64(424242)
	hammer(t, func(g int) {
		for i := 0; i < 3000; i++ {
			if i%3 == 0 {
				s.Increment(heavy)
			} else {
				s.Increment(uint64(g*10000 + i))
			}
			if i%64 == 0 {
				_ = s.Top()
			}
		}
	})
	top := s.Top()
	if len(top) == 0 || top[0].Item != heavy {
		t.Fatalf("heavy item not at top: %+v", top[:min(len(top), 3)])
	}
	if hh := s.HeavyHitters(0.2, 8*3000); len(hh) != 1 || hh[0].Item != heavy {
		t.Fatalf("HeavyHitters = %+v, want only %d", hh, heavy)
	}
	if q := s.Query(heavy); q < 8*1000 {
		t.Fatalf("Query(heavy) = %d, want >= %d", q, 8*1000)
	}
}

// TestShardedMonitorHeavyHittersBeyondK: HeavyHitters draws from the full
// k·shards candidate set, so it can surface more than k qualifying items
// (Top() alone truncates to k).
func TestShardedMonitorHeavyHittersBeyondK(t *testing.T) {
	const k, items, reps = 4, 20, 100
	s := NewShardedMonitor(Options{Width: 1 << 10, Seed: 3}, k, 8)
	for x := uint64(1); x <= items; x++ {
		for c := 0; c < reps; c++ {
			s.Increment(x)
		}
	}
	if top := s.Top(); len(top) != k {
		t.Fatalf("Top() returned %d items, want %d", len(top), k)
	}
	// Every item clears the threshold; all that are tracked (per-shard
	// heaps hold k each, far above the ~2.5 items routed per shard) must
	// be returned, not just the global top k.
	hh := s.HeavyHitters(float64(reps)/(2*items*reps), items*reps)
	if len(hh) <= k {
		t.Fatalf("HeavyHitters returned %d items, want > k=%d (truncated to Top?)", len(hh), k)
	}
	for _, e := range hh {
		if e.Count < reps {
			t.Fatalf("item %d: estimate %d < truth %d", e.Item, e.Count, reps)
		}
	}
}

// TestWriterHammer gives each goroutine its own Writer over one shared
// Sharded sketch — the intended amortized-flush ingestion topology.
func TestWriterHammer(t *testing.T) {
	s := NewShardedCountMin(Options{Width: 1 << 10, Seed: 31}, runtime.GOMAXPROCS(0))
	const perG, universe = 5000, 100
	hammer(t, func(g int) {
		w := s.NewWriter(128)
		for i := 0; i < perG; i++ {
			w.Increment(uint64(i % universe))
		}
		w.Flush()
	})
	truth := uint64(8 * perG / universe)
	for x := uint64(0); x < universe; x++ {
		if got := s.Query(x); got < truth {
			t.Fatalf("item %d: estimate %d < truth %d", x, got, truth)
		}
	}
}

// --- marshal round-trips over the batch path --------------------------------

// TestBatchIngestedMarshalRoundTrip mirrors marshal_test.go's golden checks
// for sketches filled via UpdateBatch: decode must answer identically and
// keep interoperating (Merge with a seed-sharing peer).
func TestBatchIngestedMarshalRoundTrip(t *testing.T) {
	data := stream.Zipf(30000, 1500, 1.0, 51)
	for _, opt := range []Options{
		{Width: 512, Seed: 3},
		{Width: 512, Mode: ModeBaseline, Seed: 3},
		{Width: 512, CompactEncoding: true, Seed: 3},
	} {
		cm := NewCountMin(opt)
		cm.IncrementBatch(data)
		blob, err := cm.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalCountMin(blob)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 1500; x++ {
			if back.Query(x) != cm.Query(x) {
				t.Fatalf("opt %+v: query mismatch for %d", opt, x)
			}
		}
		peer := NewCountMin(opt)
		peer.UpdateBatch([]uint64{99, 99, 99}, 1)
		back.Merge(peer)
		if back.Query(99) < cm.Query(99)+3 {
			t.Fatal("decoded sketch cannot merge batch-built peer")
		}
	}

	cs := NewCountSketch(Options{Width: 1024, Seed: 6})
	cs.UpdateBatch(data, 2)
	blob, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	backCS, err := UnmarshalCountSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 1500; x++ {
		if backCS.Query(x) != cs.Query(x) {
			t.Fatalf("CountSketch query mismatch for %d", x)
		}
	}
}

// TestShardedMarshalRoundTrip ships each shard separately — the distributed
// use case — and reassembles a Sharded sketch from the decoded shards,
// which must answer exactly like the original.
func TestShardedMarshalRoundTrip(t *testing.T) {
	opt := Options{Width: 512, Seed: 61}
	s := NewShardedCountMin(opt, 4)
	data := stream.Zipf(40000, 2000, 1.0, 71)
	s.IncrementBatch(data)

	blobs := make([][]byte, s.Shards())
	for i := range blobs {
		var err error
		if blobs[i], err = s.Shard(i).MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt := &ShardedCountMin{NewSharded(len(blobs), routeSeed(opt), func(i int) *CountMin {
		cm, err := UnmarshalCountMin(blobs[i])
		if err != nil {
			t.Fatal(err)
		}
		return cm
	})}
	for x := uint64(0); x < 2000; x++ {
		if a, b := s.Query(x), rebuilt.Query(x); a != b {
			t.Fatalf("item %d: original %d != rebuilt %d", x, a, b)
		}
	}
	// The rebuilt sketch must remain live for further (batch) ingestion.
	rebuilt.IncrementBatch(data[:1000])
	if rebuilt.Query(data[0]) < s.Query(data[0]) {
		t.Fatal("rebuilt sketch not live")
	}
}

// TestNewShardedBoundsShardCount: the generic constructor enforces the
// envelope decoder's shard cap, so a directly constructed Sharded can
// never Marshal into a payload Unmarshal must reject.
func TestNewShardedBoundsShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded accepted 1<<17 shards")
		}
	}()
	NewSharded(1<<17, 1, func(int) *CountMin {
		return MustBuild(CountMinOf(Options{Width: 64})).(*CountMin)
	})
}

// --- Writer teardown and windowed flush semantics ---------------------------

// TestWriterCloseSemantics pins the Writer lifecycle: Close flushes the
// buffered tail, is idempotent, and any later use panics.
func TestWriterCloseSemantics(t *testing.T) {
	s := NewShardedCountMin(Options{Width: 1 << 10, Seed: 33}, 4)
	w := s.NewWriter(128)
	for i := 0; i < 100; i++ {
		w.Increment(uint64(i % 10))
	}
	w.Close()
	w.Close() // idempotent
	for x := uint64(0); x < 10; x++ {
		if got := s.Query(x); got < 10 {
			t.Fatalf("Close lost buffered items: Query(%d) = %d, want >= 10", x, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("use after Close did not panic")
		}
	}()
	w.Increment(1)
}

// TestWriterFlushBeforeTickEquivalence pins the documented window-bucket
// contract: a Writer that flushes before every Tick produces a window
// byte-identical to unbuffered ingestion with the same tick positions —
// buffering never smears items across bucket boundaries.
func TestWriterFlushBeforeTickEquivalence(t *testing.T) {
	opt := Options{Width: 1 << 10, Seed: 35}
	buffered := NewShardedWindowedCountMin(opt, 4, 0, 4)
	direct := NewShardedWindowedCountMin(opt, 4, 0, 4)
	trace := stream.Zipf(6000, 300, 0.99, 35)
	w := buffered.NewWriter(64)
	for i, x := range trace {
		w.Increment(x)
		direct.Increment(x)
		if i%500 == 499 {
			w.Flush()
			buffered.Tick()
			direct.Tick()
		}
	}
	w.Close()
	for x := uint64(0); x < 300; x++ {
		if b, d := buffered.Query(x), direct.Query(x); b != d {
			t.Fatalf("buffered window diverges at item %d: %d vs %d", x, b, d)
		}
	}
	a, err := Marshal(buffered)
	if err != nil {
		t.Fatalf("marshal buffered: %v", err)
	}
	b, err := Marshal(direct)
	if err != nil {
		t.Fatalf("marshal direct: %v", err)
	}
	if string(a) != string(b) {
		t.Fatal("flush-before-tick windows are not byte-identical")
	}
}

// TestWriterWindowedTickHammer drives Writers through concurrent
// Tick/Flush/Close on a Tick-driven sharded window: 8 goroutines ingest
// through buffered writers with mid-run close-and-reopen churn while one
// rotates the window. Rotations retire data, so the post-quiesce checks
// are structural: every shard saw every Tick exactly once, the live
// window never exceeds the ingested volume, and a tail ingested after the
// ticker stops is fully visible (nothing wedged in a buffer or a lock).
func TestWriterWindowedTickHammer(t *testing.T) {
	s := NewShardedWindowedCountMin(Options{Width: 1 << 10, Seed: 37}, 4, 0, 4)
	const perG, universe = 4000, 100
	done := make(chan struct{})
	var ticker sync.WaitGroup
	var ticks uint64
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-done:
				return
			default:
				s.Tick()
				ticks++
				runtime.Gosched()
			}
		}
	}()
	hammer(t, func(g int) {
		w := s.NewWriter(64)
		for i := 0; i < perG; i++ {
			w.Increment(uint64((g*perG + i) % universe))
			if i == perG/2 {
				w.Close()
				w = s.NewWriter(64)
			}
			if i%1000 == 999 {
				w.Flush()
			}
		}
		w.Close()
	})
	close(done)
	ticker.Wait()
	var live uint64
	for i := 0; i < s.Shards(); i++ {
		sh := s.Shard(i)
		if got := sh.Rotations(); got != ticks {
			t.Fatalf("shard %d rotated %d times, ticker issued %d", i, got, ticks)
		}
		live += sh.WindowVolume()
	}
	if want := uint64(8 * perG); live > want {
		t.Fatalf("live window holds %d items, more than the %d ingested", live, want)
	}
	// Post-quiesce tail: with the ticker stopped, a flushed batch is
	// entirely inside the live window and must obey the overestimate.
	w := s.NewWriter(64)
	for i := 0; i < 500; i++ {
		w.Increment(uint64(i % 10))
	}
	w.Close()
	for x := uint64(0); x < 10; x++ {
		if got := s.Query(x); got < 50 {
			t.Fatalf("post-quiesce tail undercounted: Query(%d) = %d, want >= 50", x, got)
		}
	}
}
