package salsa

import (
	"bytes"
	"errors"
	"testing"

	"salsa/internal/stream"
)

// deltaBackends enumerates the sum-merge backends the delta-shipping
// protocol supports. wantBytes records whether shadow/delta round trips
// are expected to be marshal-byte-identical; the SalsaSign mixed-sign
// merge relaxation (counter grouping may differ between a delta-built and
// a directly-built sketch; values and mass are equivalent) exempts the
// SALSA CountSketch from byte identity under subtraction.
var deltaBackends = []struct {
	name      string
	spec      func(opt Options) Spec
	opt       Options
	wantBytes bool
}{
	{"cms-fixed", CountMinOf, Options{Width: 1 << 10, Mode: ModeBaseline, Merge: MergeSum, Seed: 7}, true},
	{"cms-salsa", CountMinOf, Options{Width: 1 << 10, Merge: MergeSum, Seed: 7}, true},
	{"cus-fixed", ConservativeOf, Options{Width: 1 << 10, Mode: ModeBaseline, Merge: MergeSum, Seed: 7}, true},
	{"cus-salsa", ConservativeOf, Options{Width: 1 << 10, Merge: MergeSum, Seed: 7}, true},
	{"cs-fixed", CountSketchOf, Options{Width: 1 << 10, Mode: ModeBaseline, Seed: 7}, true},
	{"cs-salsa", CountSketchOf, Options{Width: 1 << 10, Seed: 7}, false},
}

func mustMarshal(t *testing.T, s Sketch) []byte {
	t.Helper()
	blob, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func queryAny(t *testing.T, s Sketch, item uint64) int64 {
	t.Helper()
	switch v := s.(type) {
	case *CountMin:
		return int64(v.Query(item))
	case *CountSketch:
		return v.Query(item)
	default:
		t.Fatalf("queryAny: unsupported %T", s)
		return 0
	}
}

// TestDeltaReplaceEquivalence is the subtract-correctness spine of the
// delta protocol: an aggregator that applies successive deltas
// (currentᵢ − currentᵢ₋₁, computed by SubtractFrom) must end up exactly
// where replacing its copy with the full state would — byte-identically
// for the backends without a documented encoding relaxation, and
// query-identically for all of them — at every cut, with the live sketch
// continuing to ingest between cuts.
func TestDeltaReplaceEquivalence(t *testing.T) {
	for _, b := range deltaBackends {
		t.Run(b.name, func(t *testing.T) {
			live, err := Build(b.spec(b.opt))
			if err != nil {
				t.Fatal(err)
			}
			trace := stream.Zipf(12_000, 1<<14, 1.1, 42)

			var shadow, applied Sketch // agent shadow, aggregator accumulation
			for cut := 0; cut < 6; cut++ {
				for _, x := range trace[cut*2000 : (cut+1)*2000] {
					live.Update(x, 1)
				}
				blob := mustMarshal(t, live)
				cur, err := Unmarshal(blob)
				if err != nil {
					t.Fatal(err)
				}
				delta, err := Unmarshal(blob)
				if err != nil {
					t.Fatal(err)
				}
				if shadow != nil {
					if err := SubtractInto(delta, shadow); err != nil {
						t.Fatalf("cut %d: subtract: %v", cut, err)
					}
				}
				if applied == nil {
					applied = delta
				} else if err := MergeInto(applied, delta); err != nil {
					t.Fatalf("cut %d: merge: %v", cut, err)
				}
				shadow = cur

				if b.wantBytes {
					if got := mustMarshal(t, applied); !bytes.Equal(got, blob) {
						t.Fatalf("cut %d: delta-applied bytes diverge from full state (%d vs %d bytes)",
							cut, len(got), len(blob))
					}
				}
				for _, x := range trace[:64] {
					if got, want := queryAny(t, applied, x), queryAny(t, live, x); got != want {
						t.Fatalf("cut %d: item %d: delta-applied estimate %d != live %d", cut, x, got, want)
					}
				}
			}
		})
	}
}

// TestDeltaOfDeltasCoalesce pins the algebra that lets an agent buffer an
// arbitrarily long outage in one envelope: deltas taken against
// intermediate cuts merge into the delta against the original shadow,
// (c₁−s) ⊎ (c₂−c₁) = c₂−s.
func TestDeltaOfDeltasCoalesce(t *testing.T) {
	for _, b := range deltaBackends {
		t.Run(b.name, func(t *testing.T) {
			live := MustBuild(b.spec(b.opt))
			trace := stream.Zipf(9000, 1<<13, 1.05, 99)

			snap := func() (Sketch, []byte) {
				blob := mustMarshal(t, live)
				s, err := Unmarshal(blob)
				if err != nil {
					t.Fatal(err)
				}
				return s, blob
			}
			for _, x := range trace[:3000] {
				live.Update(x, 1)
			}
			s0, _ := snap()
			for _, x := range trace[3000:6000] {
				live.Update(x, 1)
			}
			c1, c1blob := snap()
			for _, x := range trace[6000:] {
				live.Update(x, 1)
			}
			c2, c2blob := snap()

			d1, _ := Unmarshal(mustMarshal(t, c1))
			if err := SubtractInto(d1, s0); err != nil {
				t.Fatal(err)
			}
			d2, err := Unmarshal(c2blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := SubtractInto(d2, c1); err != nil {
				t.Fatal(err)
			}
			if err := MergeInto(d1, d2); err != nil {
				t.Fatal(err)
			}
			want, err := Unmarshal(c2blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := SubtractInto(want, s0); err != nil {
				t.Fatal(err)
			}
			if b.wantBytes {
				if !bytes.Equal(mustMarshal(t, d1), mustMarshal(t, want)) {
					t.Fatal("coalesced delta-of-deltas diverges from direct delta")
				}
			}
			// Applying either to the shadow must restore the final state.
			back, _ := Unmarshal(mustMarshal(t, s0))
			if err := MergeInto(back, d1); err != nil {
				t.Fatal(err)
			}
			if b.wantBytes {
				if !bytes.Equal(mustMarshal(t, back), c2blob) {
					t.Fatal("shadow + coalesced delta diverges from full state")
				}
			}
			for _, x := range trace[:64] {
				if got, want := queryAny(t, back, x), queryAny(t, c2, x); got != want {
					t.Fatalf("item %d: %d != %d", x, got, want)
				}
			}
			_ = c1blob
		})
	}
}

// TestDeltaEpochUnwrap runs the shadow/delta cycle through the epoch
// ingest layer: DeltaCore must expose the drained view, and deltas cut
// between Advance calls must replay byte-identically.
func TestDeltaEpochUnwrap(t *testing.T) {
	opt := Options{Width: 1 << 10, Merge: MergeSum, Seed: 3}
	live := MustBuild(EpochShardedBy(CountMinOf(opt), 2))
	ep := live.(*EpochCountMin)
	w := ep.NewWriter(0)
	trace := stream.Zipf(8000, 1<<13, 1.2, 5)

	ref := MustBuild(CountMinOf(opt)).(*CountMin)
	var shadow, applied Sketch
	for cut := 0; cut < 4; cut++ {
		for _, x := range trace[cut*2000 : (cut+1)*2000] {
			w.Increment(x)
			ref.Increment(x)
		}
		w.Flush()
		ep.Advance()
		core, err := DeltaCore(live)
		if err != nil {
			t.Fatal(err)
		}
		blob := mustMarshal(t, core)
		cur, _ := Unmarshal(blob)
		delta, _ := Unmarshal(blob)
		if shadow != nil {
			if err := SubtractInto(delta, shadow); err != nil {
				t.Fatal(err)
			}
		}
		if applied == nil {
			applied = delta
		} else if err := MergeInto(applied, delta); err != nil {
			t.Fatal(err)
		}
		shadow = cur
		if got, want := mustMarshal(t, applied), mustMarshal(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: epoch delta accumulation diverges from sequential reference", cut)
		}
	}
}

// TestDeltaUnsupported pins the typed rejections: topologies without a
// counter-wise mergeable core, max-merge sketches without an inverse, and
// mid-rotation windows (whose counts shrink when buckets retire, so
// current − shadow is not monotone) must all fail with a *DeltaError —
// never panic, never silently corrupt.
func TestDeltaUnsupported(t *testing.T) {
	var de *DeltaError

	// A windowed sketch mid-rotation: rotation makes deltas non-monotone,
	// so the windowed topology has no delta core at all.
	w := MustBuild(Windowed(CountMinOf(Options{Width: 1 << 8, Merge: MergeSum}), 4, 100))
	for i := 0; i < 250; i++ { // mid-rotation: 2 full buckets + half the third
		w.Update(uint64(i%17), 1)
	}
	if _, err := DeltaCore(w); !errors.As(err, &de) {
		t.Fatalf("DeltaCore(windowed mid-rotation) = %v, want *DeltaError", err)
	}
	if err := DeltaCapable(w); !errors.As(err, &de) {
		t.Fatalf("DeltaCapable(windowed) = %v, want *DeltaError", err)
	}

	// Max-merge CountMin has no inverse.
	mx := MustBuild(CountMinOf(Options{Width: 1 << 8, Merge: MergeMax}))
	if err := SubtractInto(mx, mx); !errors.As(err, &de) {
		t.Fatalf("SubtractInto(max-merge) = %v, want *DeltaError", err)
	}
	if err := DeltaCapable(mx); !errors.As(err, &de) {
		t.Fatalf("DeltaCapable(max-merge) = %v, want *DeltaError", err)
	}

	// Tango rows have no subtract kernel.
	tg := MustBuild(CountMinOf(Options{Width: 1 << 8, Mode: ModeTango, Merge: MergeSum}))
	if err := SubtractInto(tg, tg); !errors.As(err, &de) {
		t.Fatalf("SubtractInto(tango) = %v, want *DeltaError", err)
	}

	// Mismatched operand types and Options.
	a := MustBuild(CountMinOf(Options{Width: 1 << 8, Merge: MergeSum}))
	b := MustBuild(CountSketchOf(Options{Width: 1 << 8}))
	if err := MergeInto(a, b); !errors.As(err, &de) {
		t.Fatalf("MergeInto(cms, cs) = %v, want *DeltaError", err)
	}
	c := MustBuild(CountMinOf(Options{Width: 1 << 9, Merge: MergeSum}))
	if err := MergeInto(a, c); !errors.As(err, &de) {
		t.Fatalf("MergeInto(width mismatch) = %v, want *DeltaError", err)
	}
	d := MustBuild(CountMinOf(Options{Width: 1 << 8, Merge: MergeSum, Seed: 1}))
	if err := MergeInto(a, d); !errors.As(err, &de) {
		t.Fatalf("MergeInto(seed mismatch) = %v, want *DeltaError", err)
	}
	cus := MustBuild(ConservativeOf(Options{Width: 1 << 8, Merge: MergeSum}))
	if err := MergeInto(a, cus); !errors.As(err, &de) {
		t.Fatalf("MergeInto(cms, cus) = %v, want *DeltaError", err)
	}
}

// TestCloneSketchIndependent verifies the clone is a deep copy: mutating
// the original must not move the clone, and the clone's bytes match the
// original's at clone time.
func TestCloneSketchIndependent(t *testing.T) {
	orig := MustBuild(CountMinOf(Options{Width: 1 << 8, Merge: MergeSum})).(*CountMin)
	for i := 0; i < 500; i++ {
		orig.Increment(uint64(i % 37))
	}
	blob := mustMarshal(t, orig)
	cl, err := CloneSketch(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, cl), blob) {
		t.Fatal("clone bytes differ from original")
	}
	orig.Update(1, 1000)
	if bytes.Equal(mustMarshal(t, cl), mustMarshal(t, orig)) {
		t.Fatal("clone tracked the original after mutation")
	}
}
