package salsa

import (
	"encoding/binary"
	"errors"

	"salsa/internal/sketch"
)

// Sketch serialization: a small options header followed by the sketch
// payload (rows, seeds, merge layouts). A decoded sketch is fully
// operational and — since seeds travel with it — can Merge/Subtract with
// sketches from other processes, the paper's distributed use case (§V).

const optionsHeaderLen = 4 + 8*7

var facadeMagic = uint32(0x5a15afab)

// ErrBadPayload is returned when decoding bytes that are not a sketch.
var ErrBadPayload = errors.New("salsa: not a sketch payload")

func appendOptions(buf []byte, o Options) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, facadeMagic)
	for _, v := range []uint64{
		uint64(o.Depth), uint64(o.Width), uint64(o.Mode), uint64(o.CounterBits),
		uint64(o.Merge), boolU64(o.CompactEncoding), o.Seed,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func readOptions(data []byte) (Options, []byte, error) {
	if len(data) < optionsHeaderLen {
		return Options{}, nil, ErrBadPayload
	}
	if binary.LittleEndian.Uint32(data) != facadeMagic {
		return Options{}, nil, ErrBadPayload
	}
	f := func(i int) uint64 { return binary.LittleEndian.Uint64(data[4+8*i:]) }
	o := Options{
		Depth:           int(f(0)),
		Width:           int(f(1)),
		Mode:            Mode(f(2)),
		CounterBits:     uint(f(3)),
		Merge:           Merge(f(4)),
		CompactEncoding: f(5) == 1,
		Seed:            f(6),
	}
	return o, data[optionsHeaderLen:], nil
}

// MarshalBinary encodes the sketch for storage or transport.
func (c *CountMin) MarshalBinary() ([]byte, error) {
	payload, err := c.sk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(appendOptions(nil, c.opt), payload...), nil
}

// UnmarshalCountMin decodes a CountMin (or ConservativeUpdate) sketch.
func UnmarshalCountMin(data []byte) (*CountMin, error) {
	opt, rest, err := readOptions(data)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.UnmarshalCMS(rest)
	if err != nil {
		return nil, err
	}
	return &CountMin{sk: sk, opt: opt, conservative: sk.Conservative()}, nil
}

// MarshalBinary encodes the sketch for storage or transport.
func (c *CountSketch) MarshalBinary() ([]byte, error) {
	payload, err := c.sk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(appendOptions(nil, c.opt), payload...), nil
}

// UnmarshalCountSketch decodes a CountSketch.
func UnmarshalCountSketch(data []byte) (*CountSketch, error) {
	opt, rest, err := readOptions(data)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.UnmarshalCountSketch(rest)
	if err != nil {
		return nil, err
	}
	return &CountSketch{sk: sk, opt: opt}, nil
}
