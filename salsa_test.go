package salsa

import (
	"math"
	"testing"

	"salsa/internal/stream"
)

func TestCountMinModes(t *testing.T) {
	data := stream.Zipf(40000, 2000, 1.0, 1)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	for _, opt := range []Options{
		{Width: 512},
		{Width: 512, Mode: ModeBaseline},
		{Width: 512, Mode: ModeTango},
		{Width: 512, CompactEncoding: true},
		{Width: 512, Merge: MergeSum},
		{Width: 512, CounterBits: 4},
	} {
		cm := NewCountMin(opt)
		for _, x := range data {
			cm.Increment(x)
		}
		for x, f := range exact.Counts() {
			if est := cm.Query(x); est < f {
				t.Fatalf("%v: item %d underestimated: %d < %d", opt, x, est, f)
			}
		}
	}
}

func TestCountMinDefaults(t *testing.T) {
	cm := NewCountMin(Options{Width: 256})
	if cm.Depth() != 4 || cm.Width() != 256 {
		t.Fatalf("geometry %dx%d", cm.Depth(), cm.Width())
	}
	o := cm.Options()
	if o.Mode != ModeSALSA || o.CounterBits != 8 || o.Merge != MergeMax {
		t.Fatalf("defaults wrong: %+v", o)
	}
	b := NewCountMin(Options{Width: 256, Mode: ModeBaseline})
	if b.Options().CounterBits != 32 {
		t.Fatal("baseline default should be 32-bit")
	}
	if b.MemoryBits() != 4*256*32 {
		t.Fatalf("MemoryBits = %d", b.MemoryBits())
	}
}

func TestConservativeUpdateMoreAccurate(t *testing.T) {
	data := stream.Zipf(100000, 3000, 1.0, 2)
	exact := stream.NewExact()
	cm := NewCountMin(Options{Width: 256, Seed: 3})
	cu := NewConservativeUpdate(Options{Width: 256, Seed: 3})
	for _, x := range data {
		exact.Observe(x)
		cm.Increment(x)
		cu.Increment(x)
	}
	var cmErr, cuErr float64
	for x, f := range exact.Counts() {
		cmErr += float64(cm.Query(x) - f)
		cuErr += float64(cu.Query(x) - f)
		if cu.Query(x) < f {
			t.Fatalf("CUS underestimates item %d", x)
		}
	}
	if cuErr > cmErr {
		t.Fatalf("CUS total error %f worse than CMS %f", cuErr, cmErr)
	}
}

func TestSalsaBeatsBaselineAtEqualMemory(t *testing.T) {
	// The headline claim: at (approximately) equal memory, SALSA's 4×
	// more counters beat the 32-bit baseline on skewed streams.
	data := stream.Zipf(200000, 20000, 1.0, 4)
	exact := stream.NewExact()
	baseline := NewCountMin(Options{Width: 512, Mode: ModeBaseline, Seed: 5})
	// Equal counter memory: 512·32 bits = 2048·8 bits (plus 1/8 overhead).
	salsaSketch := NewCountMin(Options{Width: 2048, Seed: 5})
	for _, x := range data {
		exact.Observe(x)
		baseline.Increment(x)
		salsaSketch.Increment(x)
	}
	var bErr, sErr float64
	for x, f := range exact.Counts() {
		db := float64(baseline.Query(x) - f)
		ds := float64(salsaSketch.Query(x) - f)
		bErr += db * db
		sErr += ds * ds
	}
	if sErr >= bErr {
		t.Fatalf("SALSA MSE %f not better than baseline %f", sErr, bErr)
	}
}

func TestKeyBytes(t *testing.T) {
	if KeyBytes([]byte("a")) == KeyBytes([]byte("b")) {
		t.Fatal("distinct keys collide")
	}
	if KeyString("flow") != KeyBytes([]byte("flow")) {
		t.Fatal("KeyString inconsistent with KeyBytes")
	}
	cm := NewCountMin(Options{Width: 1024})
	cm.UpdateBytes([]byte("10.0.0.1:443"), 3)
	if got := cm.QueryBytes([]byte("10.0.0.1:443")); got != 3 {
		t.Fatalf("QueryBytes = %d", got)
	}
}

func TestCountMinMergeSubtract(t *testing.T) {
	opt := Options{Width: 512, Merge: MergeSum, Seed: 9}
	a := NewCountMin(opt)
	b := NewCountMin(opt)
	a.Update(1, 10)
	b.Update(1, 5)
	b.Update(2, 7)
	a.Merge(b)
	if a.Query(1) < 15 || a.Query(2) < 7 {
		t.Fatal("merge lost counts")
	}
	a.Subtract(b)
	if a.Query(1) < 10 {
		t.Fatal("subtract removed too much")
	}
}

func TestMonitorTracksHeavyHitters(t *testing.T) {
	data := stream.Zipf(80000, 5000, 1.2, 11)
	exact := stream.NewExact()
	m := NewMonitor(Options{Width: 1024, Seed: 12}, 32)
	for _, x := range data {
		exact.Observe(x)
		m.Process(x)
	}
	top := m.Top()
	if len(top) != 32 {
		t.Fatalf("tracked %d items", len(top))
	}
	// The true top-10 must be present.
	tracked := map[uint64]bool{}
	for _, e := range top {
		tracked[e.Item] = true
	}
	for _, x := range exact.TopK(10) {
		if !tracked[x] {
			t.Fatalf("true heavy hitter %d missing", x)
		}
	}
	hh := m.HeavyHitters(0.01, exact.Volume())
	for _, e := range hh {
		if float64(e.Count) < 0.01*float64(exact.Volume()) {
			t.Fatal("HeavyHitters returned a light item")
		}
	}
}

func TestCountSketchBasics(t *testing.T) {
	for _, opt := range []Options{
		{Width: 4096},
		{Width: 4096, Mode: ModeBaseline},
		{Width: 4096, CompactEncoding: true},
	} {
		cs := NewCountSketch(opt)
		if cs.Depth() != 5 {
			t.Fatalf("default depth = %d", cs.Depth())
		}
		cs.Update(1, 100)
		cs.Update(2, -40)
		if cs.Query(1) != 100 || cs.Query(2) != -40 {
			t.Fatalf("queries: %d %d", cs.Query(1), cs.Query(2))
		}
	}
}

func TestCountSketchRejectsBadOptions(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCountSketch(Options{Width: 128, Mode: ModeTango}) },
		func() { NewCountSketch(Options{Width: 128, Merge: MergeMax}) },
		func() { NewCountSketch(Options{Width: 100}) },
		func() { NewCountMin(Options{Width: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTopKTracker(t *testing.T) {
	data := stream.Zipf(60000, 3000, 1.2, 13)
	exact := stream.NewExact()
	tk := NewTopK(Options{Width: 2048, Seed: 14}, 16)
	for _, x := range data {
		exact.Observe(x)
		tk.Process(x)
	}
	got := tk.Top()
	tracked := map[uint64]bool{}
	for _, e := range got {
		tracked[e.Item] = true
	}
	hits := 0
	for _, x := range exact.TopK(16) {
		if tracked[x] {
			hits++
		}
	}
	if hits < 12 {
		t.Fatalf("only %d/16 true top items tracked", hits)
	}
}

func TestChangeDetector(t *testing.T) {
	d := NewChangeDetector(Options{Width: 4096, Seed: 15})
	for i := 0; i < 10; i++ {
		d.ObserveBefore(1)
	}
	for i := 0; i < 3; i++ {
		d.ObserveAfter(1)
		d.ObserveBefore(2)
	}
	for i := 0; i < 9; i++ {
		d.ObserveAfter(3)
	}
	if got := d.Change(1); got != -7 {
		t.Fatalf("Change(1) = %d, want -7", got)
	}
	if got := d.Change(2); got != -3 {
		t.Fatalf("Change(2) = %d, want -3", got)
	}
	if got := d.Change(3); got != 9 {
		t.Fatalf("Change(3) = %d, want 9", got)
	}
}

func TestChangeDetectorSealsAfterDiff(t *testing.T) {
	d := NewChangeDetector(Options{Width: 128, Seed: 1})
	d.ObserveBefore(1)
	_ = d.Change(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on observe-after-diff")
		}
	}()
	d.ObserveAfter(2)
}

func TestDistinctEstimate(t *testing.T) {
	cm := NewCountMin(Options{Width: 1 << 14, Seed: 16})
	data := stream.Zipf(30000, 4000, 0.8, 17)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
		cm.Increment(x)
	}
	est, err := cm.Distinct()
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(exact.Distinct())
	if math.Abs(est-truth)/truth > 0.1 {
		t.Fatalf("distinct estimate %f vs %f", est, truth)
	}
}

func TestUnivMonFacade(t *testing.T) {
	um := MustBuild(UnivMonOf(Options{Width: 512, Seed: 18}, 10, 0)).(*UnivMon)
	data := stream.Zipf(60000, 2000, 1.0, 19)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
		um.Process(x)
	}
	if um.Volume() != uint64(len(data)) {
		t.Fatal("volume wrong")
	}
	if rel := math.Abs(um.Entropy()-exact.Entropy()) / exact.Entropy(); rel > 0.2 {
		t.Fatalf("entropy rel err %f", rel)
	}
	if um.Moment(1) != float64(len(data)) {
		t.Fatal("F1 should be exact")
	}
	if len(um.HeavyHitters()) == 0 {
		t.Fatal("no heavy hitters")
	}
	if um.MemoryBits() == 0 {
		t.Fatal("no memory accounted")
	}
}

func TestColdFilterFacade(t *testing.T) {
	cf := MustBuild(Filtered(ConservativeOf(Options{Width: 512, Seed: 20}))).(*ColdFilter)
	data := stream.Zipf(60000, 5000, 1.0, 21)
	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
		cf.Process(x)
	}
	for x, f := range exact.Counts() {
		if est := cf.Query(x); est < f {
			t.Fatalf("item %d: %d < %d", x, est, f)
		}
	}
	if cf.MemoryBits() == 0 {
		t.Fatal("no memory accounted")
	}
}

func TestAEEFacades(t *testing.T) {
	a := MustBuild(AEEOf(Options{Mode: ModeBaseline, Width: 512, Seed: 22})).(*AEE)
	for i := 0; i < 50000; i++ {
		a.Process(uint64(i % 100))
	}
	if got := a.Query(5); got < 250 || got > 1000 {
		t.Fatalf("baseline AEE Query = %f, want ≈ 500", got)
	}
	if a.SampleProb() > 1 {
		t.Fatal("bad sample probability")
	}
	if a.MemoryBits() != 4*512*16 {
		t.Fatalf("MemoryBits = %d", a.MemoryBits())
	}
	s := MustBuild(AEEOf(Options{Width: 512, Seed: 23})).(*AEE)
	for i := 0; i < 50000; i++ {
		s.Process(uint64(i % 100))
	}
	if got := s.Query(5); got < 250 || got > 1000 {
		t.Fatalf("SALSA AEE Query = %f", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeSALSA.String() != "salsa" || ModeBaseline.String() != "baseline" || ModeTango.String() != "tango" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}
