package salsa

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestOptionsValidate is the table of every invalid Options combination
// the error-returning construction path must reject (and the deprecated
// panicking shims turn into panics).
func TestOptionsValidate(t *testing.T) {
	valid := Options{Width: 1 << 10, Seed: 1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error
	}{
		{"zero-width", Options{}, "power of two"},
		{"non-power-of-two-width", Options{Width: 100}, "power of two"},
		{"negative-width", Options{Width: -8}, "power of two"},
		{"negative-depth", Options{Width: 64, Depth: -1}, "negative Depth"},
		{"huge-depth", Options{Width: 64, Depth: 4096}, "exceeds the maximum"},
		{"unknown-mode", Options{Width: 64, Mode: Mode(9)}, "unknown Mode"},
		{"unknown-merge", Options{Width: 64, Merge: Merge(9)}, "unknown Merge"},
		{"oversized-counterbits", Options{Width: 64, CounterBits: 128}, "CounterBits"},
		{"npot-counterbits", Options{Width: 64, CounterBits: 3}, "power of two"},
		{"salsa-64bit-counters", Options{Width: 64, CounterBits: 64}, "exceeds 32"},
		{"salsa-narrow-width", Options{Width: 4, CounterBits: 8}, "64-bit word"},
		{"compact-narrow-width", Options{Width: 16, CompactEncoding: true}, "32-counter group"},
		{"compact-baseline", Options{Width: 64, Mode: ModeBaseline, CompactEncoding: true}, "CompactEncoding requires ModeSALSA"},
		{"compact-tango", Options{Width: 64, Mode: ModeTango, CompactEncoding: true}, "CompactEncoding requires ModeSALSA"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			// Every generic violation must also fail Build for every leaf.
			for _, spec := range []Spec{
				CountMinOf(tc.opt), ConservativeOf(tc.opt), CountSketchOf(tc.opt),
				MonitorOf(tc.opt, 4), TopKOf(tc.opt, 4),
			} {
				if _, err := Build(spec); err == nil {
					t.Fatalf("Build(%s) accepted invalid options", spec)
				}
			}
		})
	}
}

// TestBuildRejectsInvalidCompositions is the table of kind- and
// decorator-level invalid combinations.
func TestBuildRejectsInvalidCompositions(t *testing.T) {
	opt := Options{Width: 64, Seed: 1}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"tango-countsketch", CountSketchOf(Options{Width: 64, Mode: ModeTango}), "ModeTango"},
		{"maxmerge-countsketch", CountSketchOf(Options{Width: 64, Merge: MergeMax}), "MergeSum"},
		{"one-bit-countsketch", CountSketchOf(Options{Width: 64, CounterBits: 1}), "2-bit"},
		{"tango-topk", TopKOf(Options{Width: 64, Mode: ModeTango}, 4), "ModeTango"},
		{"zero-k-monitor", MonitorOf(opt, 0), "positive k"},
		{"negative-k-topk", TopKOf(opt, -3), "positive k"},
		{"zero-buckets", Windowed(CountMinOf(opt), 0, 100), "at least one bucket"},
		{"huge-buckets", Windowed(CountMinOf(opt), 1<<20, 100), "exceed the maximum"},
		{"negative-bucket-interval", Windowed(CountMinOf(opt), 4, -1), "negative bucket interval"},
		{"maxmerge-windowed", Windowed(CountMinOf(Options{Width: 64, Merge: MergeMax}), 4, 100), "MergeSum"},
		{"zero-shards", ShardedBy(CountMinOf(opt), 0), "positive shard count"},
		{"negative-shards", ShardedBy(CountMinOf(opt), -2), "positive shard count"},
		{"huge-shards", ShardedBy(CountMinOf(opt), 1<<17), "exceeds the maximum"},
		{"windowed-windowed", Windowed(Windowed(CountMinOf(opt), 4, 100), 4, 100), "cannot decorate"},
		{"windowed-sharded", Windowed(ShardedBy(CountMinOf(opt), 4), 4, 100), "cannot decorate"},
		{"sharded-sharded", ShardedBy(ShardedBy(CountMinOf(opt), 4), 4), "cannot decorate"},
		{"windowed-topk", Windowed(TopKOf(opt, 4), 4, 100), "TopK"},
		{"sharded-topk", ShardedBy(TopKOf(opt, 4), 4), "TopK"},
		{"windowed-univmon", Windowed(UnivMonOf(opt, 4, 4), 4, 100), "cannot decorate"},
		{"sharded-univmon", ShardedBy(UnivMonOf(opt, 4, 4), 2), "cannot decorate"},
		{"windowed-aee", Windowed(AEEOf(opt), 4, 100), "downsampling"},
		{"tango-aee", AEEOf(Options{Width: 64, Mode: ModeTango}), "ModeTango"},
		{"maxmerge-aee", AEEOf(Options{Width: 64, Merge: MergeMax}), "overflow"},
		{"compact-aee", AEEOf(Options{Width: 64, CompactEncoding: true}), "CompactEncoding"},
		{"tango-distinct", DistinctOf(Options{Width: 64, Mode: ModeTango}), "zero fractions"},
		{"tango-univmon", UnivMonOf(Options{Width: 64, Mode: ModeTango}, 4, 4), "ModeTango"},
		{"zero-levels-univmon", leafSpec{kind: kindUnivMon, opt: opt, k: 4}, "levels"},
		{"huge-levels-univmon", UnivMonOf(opt, 65, 4), "levels"},
		{"filtered-countsketch", Filtered(CountSketchOf(opt)), "overestimate semantics"},
		{"filtered-windowed", Filtered(Windowed(CountMinOf(opt), 4, 100)), "cannot decorate"},
		{"tiered-cus", Tiered(ConservativeOf(opt)), "Count-Min"},
		{"tiered-nil", Tiered(nil), "nil spec"},
		{"filtered-nil", Filtered(nil), "nil spec"},
		{"windowed-filtered", Windowed(Filtered(CountMinOf(opt)), 4, 100), "cannot decorate"},
		{"sharded-windowed-distinct", ShardedBy(Windowed(DistinctOf(opt), 4, 100), 2), "WindowedDistinct"},
		{"windowed-nil", Windowed(nil, 4, 100), "nil spec"},
		{"sharded-nil", ShardedBy(nil, 4), "nil spec"},
		{"nil", nil, "nil spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Build(tc.spec)
			if err == nil {
				t.Fatalf("Build accepted invalid composition, returned %T", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestCompositionErrorType pins the typed rejection: decorator mismatches
// surface as *CompositionError carrying the decorator, the inner spec
// expression, and a reason, so callers can branch on errors.As.
func TestCompositionErrorType(t *testing.T) {
	opt := Options{Width: 64, Seed: 1}
	_, err := Build(Windowed(UnivMonOf(opt, 4, 4), 4, 100))
	var ce *CompositionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CompositionError", err)
	}
	if ce.Decorator != "Windowed" || ce.Inner == "" || ce.Reason == "" {
		t.Fatalf("CompositionError fields incomplete: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "cannot decorate") {
		t.Fatalf("Error() = %q", ce.Error())
	}
	// Plain geometry errors stay untyped.
	_, err = Build(CountMinOf(Options{Width: 3}))
	if errors.As(err, &ce) {
		t.Fatal("options error should not be a CompositionError")
	}
}

// TestBuildRejectsHugeTrackerK: tracker capacities beyond the envelope's
// decode bound are rejected at Build time, so every constructible tracker
// is serializable. On 32-bit platforms such a k is not representable as
// int at all, hence the guard.
func TestBuildRejectsHugeTrackerK(t *testing.T) {
	big := int64(maxHeapK) + 1
	if int64(int(big)) != big {
		t.Skip("k beyond the decode bound does not fit int on this platform")
	}
	for _, spec := range []Spec{
		MonitorOf(Options{Width: 64, Seed: 1}, int(big)),
		TopKOf(Options{Width: 64, Seed: 1}, int(big)),
	} {
		if s, err := Build(spec); err == nil {
			t.Fatalf("Build(%v) accepted k %d, returned %T", spec, big, s)
		} else if !strings.Contains(err.Error(), "exceeds the maximum") {
			t.Fatalf("Build(%v) error = %v, want the k bound", spec, err)
		}
	}
}

// TestBuildConcreteTypes pins the concrete type behind every supported
// composition — the monomorphic types PR 3's hot paths depend on.
func TestBuildConcreteTypes(t *testing.T) {
	opt := Options{Width: 64, Seed: 1}
	cases := []struct {
		spec Spec
		want any
	}{
		{CountMinOf(opt), (*CountMin)(nil)},
		{ConservativeOf(opt), (*CountMin)(nil)},
		{CountSketchOf(opt), (*CountSketch)(nil)},
		{MonitorOf(opt, 4), (*Monitor)(nil)},
		{TopKOf(opt, 4), (*TopK)(nil)},
		{Windowed(CountMinOf(opt), 4, 100), (*WindowedCountMin)(nil)},
		{Windowed(ConservativeOf(opt), 4, 100), (*WindowedCountMin)(nil)},
		{Windowed(CountSketchOf(opt), 4, 100), (*WindowedCountSketch)(nil)},
		{Windowed(MonitorOf(opt, 4), 4, 100), (*WindowedMonitor)(nil)},
		{ShardedBy(CountMinOf(opt), 2), (*ShardedCountMin)(nil)},
		{ShardedBy(ConservativeOf(opt), 2), (*ShardedCountMin)(nil)},
		{ShardedBy(CountSketchOf(opt), 2), (*ShardedCountSketch)(nil)},
		{ShardedBy(MonitorOf(opt, 4), 2), (*ShardedMonitor)(nil)},
		{ShardedBy(Windowed(CountMinOf(opt), 4, 100), 2), (*ShardedWindowedCountMin)(nil)},
		{ShardedBy(Windowed(CountSketchOf(opt), 4, 100), 2), (*ShardedWindowedCountSketch)(nil)},
		{ShardedBy(Windowed(MonitorOf(opt, 4), 4, 100), 2), (*ShardedWindowedMonitor)(nil)},
		{UnivMonOf(opt, 8, 16), (*UnivMon)(nil)},
		{AEEOf(opt), (*AEE)(nil)},
		{DistinctOf(opt), (*Distinct)(nil)},
		{Windowed(DistinctOf(opt), 4, 100), (*WindowedDistinct)(nil)},
		{Filtered(CountMinOf(opt)), (*ColdFilter)(nil)},
		{Filtered(ConservativeOf(opt)), (*ColdFilter)(nil)},
		{Tiered(CountMinOf(opt)), (*Pyramid)(nil)},
		{ShardedBy(AEEOf(opt), 2), (*ShardedAEE)(nil)},
		{ShardedBy(DistinctOf(opt), 2), (*ShardedDistinct)(nil)},
		{ShardedBy(Filtered(ConservativeOf(opt)), 2), (*ShardedColdFilter)(nil)},
		{ShardedBy(Tiered(CountMinOf(opt)), 2), (*ShardedPyramid)(nil)},
	}
	for _, tc := range cases {
		s, err := Build(tc.spec)
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.spec, err)
		}
		if gotT, wantT := typeName(s), typeName(tc.want); gotT != wantT {
			t.Fatalf("Build(%s) = %s, want %s", tc.spec, gotT, wantT)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *CountMin:
		return "*CountMin"
	case *CountSketch:
		return "*CountSketch"
	case *Monitor:
		return "*Monitor"
	case *TopK:
		return "*TopK"
	case *WindowedCountMin:
		return "*WindowedCountMin"
	case *WindowedCountSketch:
		return "*WindowedCountSketch"
	case *WindowedMonitor:
		return "*WindowedMonitor"
	case *ShardedCountMin:
		return "*ShardedCountMin"
	case *ShardedCountSketch:
		return "*ShardedCountSketch"
	case *ShardedMonitor:
		return "*ShardedMonitor"
	case *ShardedWindowedCountMin:
		return "*ShardedWindowedCountMin"
	case *ShardedWindowedCountSketch:
		return "*ShardedWindowedCountSketch"
	case *ShardedWindowedMonitor:
		return "*ShardedWindowedMonitor"
	case *UnivMon:
		return "*UnivMon"
	case *AEE:
		return "*AEE"
	case *Distinct:
		return "*Distinct"
	case *WindowedDistinct:
		return "*WindowedDistinct"
	case *ColdFilter:
		return "*ColdFilter"
	case *Pyramid:
		return "*Pyramid"
	case *ShardedAEE:
		return "*ShardedAEE"
	case *ShardedDistinct:
		return "*ShardedDistinct"
	case *ShardedColdFilter:
		return "*ShardedColdFilter"
	case *ShardedPyramid:
		return "*ShardedPyramid"
	}
	return "unknown"
}

// TestBuildMatchesDeprecatedConstructors pins Build to the shims: a built
// sketch and its constructor-built twin marshal byte-identically after the
// same stream (same defaults, same seeds, same row layouts).
func TestBuildMatchesDeprecatedConstructors(t *testing.T) {
	opt := Options{Width: 256, Seed: 5}
	data := roundTripItems[:2000]

	built := MustBuild(CountMinOf(opt)).(*CountMin)
	legacy := NewCountMin(opt)
	built.UpdateBatch(data, 1)
	legacy.UpdateBatch(data, 1)
	b1, err := built.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Build(CountMinOf) and NewCountMin diverge")
	}

	wb := MustBuild(Windowed(ConservativeOf(opt), 4, 300)).(*WindowedCountMin)
	wl := NewWindowedConservativeUpdate(opt, 4, 300)
	wb.UpdateBatch(data, 1)
	wl.UpdateBatch(data, 1)
	for _, x := range data[:128] {
		if wb.Query(x) != wl.Query(x) {
			t.Fatal("Build(Windowed(ConservativeOf)) and NewWindowedConservativeUpdate diverge")
		}
	}
}

// TestDeprecatedShimsStillPanic pins the compatibility contract: the old
// constructors keep their panic-on-invalid behavior.
func TestDeprecatedShimsStillPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewCountMin bad width", func() { NewCountMin(Options{Width: 100}) })
	mustPanic("NewCountSketch tango", func() { NewCountSketch(Options{Width: 64, Mode: ModeTango}) })
	mustPanic("NewWindowedCountMin maxmerge", func() {
		NewWindowedCountMin(Options{Width: 64, Merge: MergeMax}, 4, 100)
	})
	mustPanic("NewMonitor zero k", func() { NewMonitor(Options{Width: 64}, 0) })
	mustPanic("NewShardedCountMin huge shards", func() { NewShardedCountMin(Options{Width: 64}, 1<<17) })
	mustPanic("MustBuild", func() { MustBuild(CountMinOf(Options{Width: 3})) })
}

// TestSpecString pins the expression syntax ParseSpec consumes.
func TestSpecString(t *testing.T) {
	opt := Options{Width: 64}
	cases := []struct {
		spec Spec
		want string
	}{
		{CountMinOf(opt), "cms"},
		{ConservativeOf(opt), "cus"},
		{CountSketchOf(opt), "cs"},
		{MonitorOf(opt, 10), "monitor(10)"},
		{TopKOf(opt, 5), "topk(5)"},
		{Windowed(CountMinOf(opt), 4, 65536), "windowed(4,65536,cms)"},
		{ShardedBy(Windowed(CountMinOf(opt), 4, 65536), 8), "sharded(8,windowed(4,65536,cms))"},
		{UnivMonOf(opt, 12, 50), "univmon(12,50)"},
		{AEEOf(opt), "aee"},
		{DistinctOf(opt), "distinct"},
		{Windowed(DistinctOf(opt), 4, 100), "windowed(4,100,distinct)"},
		{Filtered(ConservativeOf(opt)), "filtered(cus)"},
		{Tiered(CountMinOf(opt)), "tiered(cms)"},
		{ShardedBy(Filtered(CountMinOf(opt)), 4), "sharded(4,filtered(cms))"},
	}
	for _, tc := range cases {
		if got := tc.spec.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}
