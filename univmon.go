package salsa

import (
	"salsa/internal/univmon"
)

// maxUnivMonLevels bounds the level stack: level j samples items whose j
// lowest hash bits are all ones, so more than 64 levels could never be
// reached by a 64-bit sampling hash.
const maxUnivMonLevels = 64

// UnivMon estimates any Stream-PolyLog function of the frequency vector —
// entropy, frequency moments, distinct count — from a single pass (§III):
// a stack of Count Sketches over geometrically halving substreams, each
// paired with a top-k heap, combined by the recursive G-sum estimator. The
// paper's "SALSA UnivMon" is this with ModeSALSA rows (the default).
//
// UnivMon is a Cash Register sketch: Update panics on negative counts.
type UnivMon struct {
	um     *univmon.Sketch
	opt    Options
	levels int
	k      int
}

// buildUnivMon realizes a UnivMonOf spec.
func buildUnivMon(opt Options, levels, heapK int) (*UnivMon, error) {
	if err := (leafSpec{kind: kindUnivMon, opt: opt, k: heapK, levels: levels}).validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(5, MergeSum)
	um := univmon.New(univmon.Config{
		Levels: levels,
		Depth:  opt.Depth,
		Width:  opt.Width,
		HeapK:  heapK,
		Rows:   signedRowSpec(opt),
		Seed:   opt.Seed,
	})
	return &UnivMon{um: um, opt: opt, levels: levels, k: heapK}, nil
}

// Update adds count occurrences of item; count must be non-negative.
func (u *UnivMon) Update(item uint64, count int64) { u.um.UpdateWeighted(item, count) }

// UpdateBatch adds count occurrences of every item, in order.
func (u *UnivMon) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		u.um.UpdateWeighted(x, count)
	}
}

// Process records one unit-weight arrival.
func (u *UnivMon) Process(item uint64) { u.um.Update(item) }

// Entropy estimates the empirical entropy of the frequency vector.
func (u *UnivMon) Entropy() float64 { return u.um.Entropy() }

// Moment estimates the frequency moment Fp.
func (u *UnivMon) Moment(p float64) float64 { return u.um.Moment(p) }

// Distinct estimates the number of distinct items F0.
func (u *UnivMon) Distinct() float64 { return u.um.Distinct() }

// Volume returns the number of processed arrivals N.
func (u *UnivMon) Volume() uint64 { return u.um.Volume() }

// Levels returns the number of Count Sketch levels.
func (u *UnivMon) Levels() int { return u.levels }

// HeapK returns the per-level heavy-hitter heap capacity.
func (u *UnivMon) HeapK() int { return u.k }

// Options returns the per-level sketch Options with defaults applied.
func (u *UnivMon) Options() Options { return u.opt }

// HeavyHitters returns the tracked items with the largest estimates.
func (u *UnivMon) HeavyHitters() []ItemCount {
	entries := u.um.HeavyHitters()
	out := make([]ItemCount, len(entries))
	for i, e := range entries {
		out[i] = ItemCount{Item: e.Item, Count: e.Count}
	}
	return out
}

// MemoryBits returns the total footprint of the level sketches.
func (u *UnivMon) MemoryBits() int { return u.um.SizeBits() }
