package salsa

import (
	"fmt"

	"salsa/internal/sketch"
	"salsa/internal/topk"
)

// Typed epoch-merged wrappers: the concrete sketches EpochShardedBy
// builds. Each couples the generic Epoch core (private per-writer
// sketches, seqlock epoch cuts) with a shared view of the matching
// sketch type. All private sketches share the view's seeds — they merge
// into it, unlike ShardedBy's hash-partitioned shards which deliberately
// use distinct per-shard seeds.
//
// Like windowed sketches, epoch sketches force sum-merge counters: a
// drain merges private sketches of disjoint substreams, and only summing
// preserves the overestimate (CMS/CU) and unbiasedness (CS) guarantees
// for the concatenated stream.
//
// Two ingestion surfaces:
//
//   - NewWriter returns a per-goroutine EpochWriter — the lock-free fast
//     path. Data becomes visible to queries at the next epoch drain
//     (Advance, AutoAdvance, or windowed Tick).
//   - The wrapper's own Update/UpdateBatch satisfy Sketch by applying to
//     the shared view directly under the view lock — immediately
//     visible, serialized, the compatibility path.

// validateEpochMerge rejects max-merge counters, which would under-count
// items spread across private epoch sketches (same argument as windows).
func validateEpochMerge(opt Options) error {
	if opt.Merge == MergeMax {
		return fmt.Errorf("salsa: epoch sketches require MergeSum (drains sum disjoint private substreams)")
	}
	return nil
}

// validateEpochWriters bounds the configured writer-slot count to the
// envelope decoder's limit.
func validateEpochWriters(writers int) error {
	if writers <= 0 {
		return fmt.Errorf("salsa: EpochShardedBy needs a positive writer count, got %d", writers)
	}
	if writers > maxEpochWriters {
		return fmt.Errorf("salsa: epoch writer count %d exceeds the maximum %d", writers, maxEpochWriters)
	}
	return nil
}

// EpochCountMin is an epoch-merged CountMin (or Conservative Update)
// sketch: lock-free per-writer ingestion drained into one shared CMS.
type EpochCountMin struct {
	*Epoch[*sketch.CMS]
	view *CountMin
}

// buildEpochCountMin realizes an EpochShardedBy(CountMinOf/ConservativeOf)
// spec.
func buildEpochCountMin(opt Options, writers int, conservative bool) (*EpochCountMin, error) {
	kind := kindCountMin
	if conservative {
		kind = kindConservative
	}
	if err := opt.validateFor(kind); err != nil {
		return nil, err
	}
	if err := validateEpochMerge(opt); err != nil {
		return nil, err
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	view := &CountMin{sk: cmsRingOps(opt, conservative).New(), opt: opt, conservative: conservative}
	return newEpochCountMin(view, writers), nil
}

// newEpochCountMin wires the epoch core onto an existing view; the
// envelope decoder reuses it with a decoded view.
func newEpochCountMin(view *CountMin, writers int) *EpochCountMin {
	ops := cmsRingOps(view.opt, view.conservative)
	c := &EpochCountMin{view: view}
	c.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CMS, n uint64) { view.sk.MergeFrom(buf) },
		ops.Reset)
	return c
}

// Update applies directly to the shared view (immediately visible,
// serialized). Use NewWriter for the lock-free path.
func (c *EpochCountMin) Update(item uint64, count int64) {
	c.viewMu.Lock()
	c.view.Update(item, count)
	c.viewMu.Unlock()
}

// Increment adds one occurrence of item to the shared view.
func (c *EpochCountMin) Increment(item uint64) { c.Update(item, 1) }

// UpdateBatch applies directly to the shared view, serialized.
func (c *EpochCountMin) UpdateBatch(items []uint64, count int64) {
	c.viewMu.Lock()
	c.view.UpdateBatch(items, count)
	c.viewMu.Unlock()
}

// Query returns the merged-view frequency overestimate. It reflects every
// epoch drained so far; Pending quantifies the not-yet-drained remainder.
func (c *EpochCountMin) Query(item uint64) uint64 {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.Query(item)
}

// QueryBatch writes the merged-view estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (c *EpochCountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.QueryBatch(items, dst)
}

// MemoryBits returns the footprint in bits: the shared view plus both
// private buffers of every writer slot.
func (c *EpochCountMin) MemoryBits() int { return c.view.MemoryBits() + c.privateBits() }

// Options returns the view configuration with defaults applied.
func (c *EpochCountMin) Options() Options { return c.view.opt }

// View exposes the shared read view for surfaces not wrapped here; do
// not mutate it concurrently with drains.
func (c *EpochCountMin) View() *CountMin { return c.view }

// EpochCountSketch is an epoch-merged Count Sketch: lock-free per-writer
// ingestion drained into one shared unbiased view.
type EpochCountSketch struct {
	*Epoch[*sketch.CountSketch]
	view *CountSketch
}

// buildEpochCountSketch realizes an EpochShardedBy(CountSketchOf) spec.
func buildEpochCountSketch(opt Options, writers int) (*EpochCountSketch, error) {
	if err := opt.validateFor(kindCountSketch); err != nil {
		return nil, err
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(5, MergeSum)
	view := &CountSketch{sk: csRingOps(opt).New(), opt: opt}
	return newEpochCountSketch(view, writers), nil
}

func newEpochCountSketch(view *CountSketch, writers int) *EpochCountSketch {
	ops := csRingOps(view.opt)
	c := &EpochCountSketch{view: view}
	c.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CountSketch, n uint64) { view.sk.MergeFrom(buf, 1) },
		ops.Reset)
	return c
}

// Update applies directly to the shared view, serialized.
func (c *EpochCountSketch) Update(item uint64, count int64) {
	c.viewMu.Lock()
	c.view.Update(item, count)
	c.viewMu.Unlock()
}

// Increment adds one occurrence of item to the shared view.
func (c *EpochCountSketch) Increment(item uint64) { c.Update(item, 1) }

// UpdateBatch applies directly to the shared view, serialized.
func (c *EpochCountSketch) UpdateBatch(items []uint64, count int64) {
	c.viewMu.Lock()
	c.view.UpdateBatch(items, count)
	c.viewMu.Unlock()
}

// Query returns the merged-view (unbiased) frequency estimate.
func (c *EpochCountSketch) Query(item uint64) int64 {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.Query(item)
}

// QueryBatch writes the merged-view estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (c *EpochCountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.QueryBatch(items, dst)
}

// MemoryBits returns the view-plus-private-buffers footprint in bits.
func (c *EpochCountSketch) MemoryBits() int { return c.view.MemoryBits() + c.privateBits() }

// Options returns the view configuration with defaults applied.
func (c *EpochCountSketch) Options() Options { return c.view.opt }

// View exposes the shared read view.
func (c *EpochCountSketch) View() *CountSketch { return c.view }

// epochMonitorBuf is a Monitor's private per-writer half: a CU sketch
// plus the epoch's top-k candidates by private estimate. On drain the
// sketch merges into the view and the candidates are re-offered at their
// merged estimates, in the heap's deterministic (count, item) order.
type epochMonitorBuf struct {
	cm   *sketch.CMS
	heap *topk.Heap
}

func (b *epochMonitorBuf) Update(item uint64, count int64) {
	b.cm.Update(item, count)
	b.heap.Offer(item, int64(b.cm.Query(item)))
}

func (b *epochMonitorBuf) UpdateBatch(items []uint64, count int64) {
	for _, x := range items {
		b.Update(x, count)
	}
}

func (b *epochMonitorBuf) SizeBits() int { return b.cm.SizeBits() }

// EpochMonitor is an epoch-merged heavy-hitter Monitor: each writer
// tracks its epoch's candidates privately; drains merge the sketches and
// re-estimate the candidates against the merged view.
type EpochMonitor struct {
	*Epoch[*epochMonitorBuf]
	view *Monitor
}

// buildEpochMonitor realizes an EpochShardedBy(MonitorOf) spec.
func buildEpochMonitor(opt Options, k, writers int) (*EpochMonitor, error) {
	if err := validateTrackerK("monitor", k); err != nil {
		return nil, err
	}
	if err := opt.validateFor(kindConservative); err != nil {
		return nil, err
	}
	if err := validateEpochMerge(opt); err != nil {
		return nil, err
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	view := &Monitor{
		cm:   &CountMin{sk: cmsRingOps(opt, true).New(), opt: opt, conservative: true},
		heap: topk.New(k),
	}
	return newEpochMonitor(view, writers), nil
}

func newEpochMonitor(view *Monitor, writers int) *EpochMonitor {
	k := view.heap.Cap()
	ops := cmsRingOps(view.cm.opt, true)
	m := &EpochMonitor{view: view}
	m.Epoch = newEpoch(writers,
		func() *epochMonitorBuf { return &epochMonitorBuf{cm: ops.New(), heap: topk.New(k)} },
		func(buf *epochMonitorBuf, n uint64) {
			view.cm.sk.MergeFrom(buf.cm)
			for _, ent := range buf.heap.Items() {
				view.heap.Offer(ent.Item, int64(view.cm.sk.Query(ent.Item)))
			}
		},
		func(buf *epochMonitorBuf) {
			buf.cm.Reset()
			buf.heap.Reset()
		})
	return m
}

// Update applies directly to the shared view, serialized.
func (m *EpochMonitor) Update(item uint64, count int64) {
	m.viewMu.Lock()
	m.view.Update(item, count)
	m.viewMu.Unlock()
}

// Process records one occurrence of item on the shared view.
func (m *EpochMonitor) Process(item uint64) { m.Update(item, 1) }

// UpdateBatch applies directly to the shared view, serialized.
func (m *EpochMonitor) UpdateBatch(items []uint64, count int64) {
	m.viewMu.Lock()
	m.view.UpdateBatch(items, count)
	m.viewMu.Unlock()
}

// Query returns the merged-view frequency overestimate.
func (m *EpochMonitor) Query(item uint64) uint64 {
	m.viewMu.Lock()
	defer m.viewMu.Unlock()
	return m.view.cm.Query(item)
}

// Top returns the tracked items in descending merged-estimate order.
func (m *EpochMonitor) Top() []ItemCount {
	m.viewMu.Lock()
	defer m.viewMu.Unlock()
	return m.view.Top()
}

// HeavyHitters returns the tracked items whose merged estimate is at
// least phi times volume.
func (m *EpochMonitor) HeavyHitters(phi float64, volume uint64) []ItemCount {
	m.viewMu.Lock()
	defer m.viewMu.Unlock()
	return m.view.HeavyHitters(phi, volume)
}

// K returns the tracker capacity.
func (m *EpochMonitor) K() int { return m.view.heap.Cap() }

// MemoryBits returns the view-plus-private-buffers footprint in bits.
func (m *EpochMonitor) MemoryBits() int { return m.view.MemoryBits() + m.privateBits() }

// Options returns the view configuration with defaults applied.
func (m *EpochMonitor) Options() Options { return m.view.cm.opt }

// EpochDistinct is an epoch-merged Linear Counting distinct estimator:
// private CMS sketches merge into one shared view whose zero-counter
// fractions feed the cardinality estimate.
type EpochDistinct struct {
	*Epoch[*sketch.CMS]
	view *Distinct
}

// buildEpochDistinct realizes an EpochShardedBy(DistinctOf) spec.
func buildEpochDistinct(opt Options, writers int) (*EpochDistinct, error) {
	if err := opt.validateFor(kindDistinct); err != nil {
		return nil, err
	}
	if err := validateEpochMerge(opt); err != nil {
		return nil, err
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(4, MergeSum)
	view := &Distinct{cm: &CountMin{sk: cmsRingOps(opt, false).New(), opt: opt}}
	return newEpochDistinct(view, writers), nil
}

func newEpochDistinct(view *Distinct, writers int) *EpochDistinct {
	ops := cmsRingOps(view.cm.opt, false)
	d := &EpochDistinct{view: view}
	d.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CMS, n uint64) { view.cm.sk.MergeFrom(buf) },
		ops.Reset)
	return d
}

// Update applies directly to the shared view, serialized.
func (d *EpochDistinct) Update(item uint64, count int64) {
	d.viewMu.Lock()
	d.view.Update(item, count)
	d.viewMu.Unlock()
}

// Increment adds one occurrence of item to the shared view.
func (d *EpochDistinct) Increment(item uint64) { d.Update(item, 1) }

// UpdateBatch applies directly to the shared view, serialized.
func (d *EpochDistinct) UpdateBatch(items []uint64, count int64) {
	d.viewMu.Lock()
	d.view.UpdateBatch(items, count)
	d.viewMu.Unlock()
}

// Query returns the merged-view frequency estimate.
func (d *EpochDistinct) Query(item uint64) uint64 {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.Query(item)
}

// Estimate returns the Linear Counting distinct estimate over the merged
// view.
func (d *EpochDistinct) Estimate() (float64, error) {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.Estimate()
}

// StdError returns the estimator's relative standard error at a true
// cardinality f0.
func (d *EpochDistinct) StdError(f0 float64) float64 { return d.view.StdError(f0) }

// MemoryBits returns the view-plus-private-buffers footprint in bits.
func (d *EpochDistinct) MemoryBits() int { return d.view.MemoryBits() + d.privateBits() }

// Options returns the view configuration with defaults applied.
func (d *EpochDistinct) Options() Options { return d.view.Options() }

// EpochWindowedCountMin is an epoch-merged sliding-window CountMin:
// drains fold private sketches into the window's current bucket, and
// Tick cuts an epoch before rotating so every pre-Tick operation lands
// in the pre-Tick bucket. Only Tick-driven windows compose (the spec
// layer rejects count-based rotation, which would split a drained epoch
// across buckets).
type EpochWindowedCountMin struct {
	*Epoch[*sketch.CMS]
	view *WindowedCountMin
}

// buildEpochWindowedCMS realizes an
// EpochShardedBy(Windowed(CountMinOf/ConservativeOf)) spec.
func buildEpochWindowedCMS(opt Options, buckets, bucketItems, writers int, conservative bool) (*EpochWindowedCountMin, error) {
	if bucketItems != 0 {
		return nil, fmt.Errorf("salsa: epoch windows are Tick-driven; bucketItems must be 0, got %d", bucketItems)
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	w, err := buildWindowedCMS(opt, buckets, 0, conservative)
	if err != nil {
		return nil, err
	}
	return newEpochWindowedCountMin(w, writers), nil
}

func newEpochWindowedCountMin(w *WindowedCountMin, writers int) *EpochWindowedCountMin {
	ops := cmsRingOps(w.opt, w.conservative)
	ew := &EpochWindowedCountMin{view: w}
	ew.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CMS, n uint64) {
			w.ring.Cur().MergeFrom(buf)
			w.ring.Wrote(n)
		},
		ops.Reset)
	return ew
}

// Update applies directly to the window's current bucket, serialized.
func (w *EpochWindowedCountMin) Update(item uint64, count int64) {
	w.viewMu.Lock()
	w.view.Update(item, count)
	w.viewMu.Unlock()
}

// Increment adds one occurrence of item to the current bucket.
func (w *EpochWindowedCountMin) Increment(item uint64) { w.Update(item, 1) }

// UpdateBatch applies directly to the current bucket, serialized.
func (w *EpochWindowedCountMin) UpdateBatch(items []uint64, count int64) {
	w.viewMu.Lock()
	w.view.UpdateBatch(items, count)
	w.viewMu.Unlock()
}

// Query returns the live-window frequency overestimate from the merged
// view.
func (w *EpochWindowedCountMin) Query(item uint64) uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.Query(item)
}

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (w *EpochWindowedCountMin) QueryBatch(items []uint64, dst []uint64) []uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.QueryBatch(items, dst)
}

// Tick rotates the window by one bucket — after cutting an epoch, so all
// previously retired private data lands in the pre-Tick bucket. Writer
// operations concurrent with Tick land coherently in the pre- or
// post-Tick bucket, never split.
func (w *EpochWindowedCountMin) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advanceLocked()
	w.viewMu.Lock()
	w.view.Tick()
	w.viewMu.Unlock()
}

// Buckets returns the number of ring buckets B.
func (w *EpochWindowedCountMin) Buckets() int { return w.view.Buckets() }

// BucketItems returns 0: epoch windows are always Tick-driven.
func (w *EpochWindowedCountMin) BucketItems() int { return w.view.BucketItems() }

// Rotations returns the number of bucket rotations performed so far.
func (w *EpochWindowedCountMin) Rotations() uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.Rotations()
}

// WindowVolume returns the number of drained items in the live window.
func (w *EpochWindowedCountMin) WindowVolume() uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.WindowVolume()
}

// MemoryBits returns the ring-plus-private-buffers footprint in bits.
func (w *EpochWindowedCountMin) MemoryBits() int { return w.view.MemoryBits() + w.privateBits() }

// Options returns the bucket sketch configuration with defaults applied.
func (w *EpochWindowedCountMin) Options() Options { return w.view.opt }

// EpochWindowedCountSketch is an epoch-merged sliding-window Count
// Sketch; see EpochWindowedCountMin for the drain/Tick semantics.
type EpochWindowedCountSketch struct {
	*Epoch[*sketch.CountSketch]
	view *WindowedCountSketch
}

// buildEpochWindowedCountSketch realizes an
// EpochShardedBy(Windowed(CountSketchOf)) spec.
func buildEpochWindowedCountSketch(opt Options, buckets, bucketItems, writers int) (*EpochWindowedCountSketch, error) {
	if bucketItems != 0 {
		return nil, fmt.Errorf("salsa: epoch windows are Tick-driven; bucketItems must be 0, got %d", bucketItems)
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	w, err := buildWindowedCountSketch(opt, buckets, 0)
	if err != nil {
		return nil, err
	}
	return newEpochWindowedCountSketch(w, writers), nil
}

func newEpochWindowedCountSketch(w *WindowedCountSketch, writers int) *EpochWindowedCountSketch {
	ops := csRingOps(w.opt)
	ew := &EpochWindowedCountSketch{view: w}
	ew.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CountSketch, n uint64) {
			w.ring.Cur().MergeFrom(buf, 1)
			w.ring.Wrote(n)
		},
		ops.Reset)
	return ew
}

// Update applies directly to the window's current bucket, serialized.
func (w *EpochWindowedCountSketch) Update(item uint64, count int64) {
	w.viewMu.Lock()
	w.view.Update(item, count)
	w.viewMu.Unlock()
}

// Increment adds one occurrence of item to the current bucket.
func (w *EpochWindowedCountSketch) Increment(item uint64) { w.Update(item, 1) }

// UpdateBatch applies directly to the current bucket, serialized.
func (w *EpochWindowedCountSketch) UpdateBatch(items []uint64, count int64) {
	w.viewMu.Lock()
	w.view.UpdateBatch(items, count)
	w.viewMu.Unlock()
}

// Query returns the live-window (unbiased) frequency estimate.
func (w *EpochWindowedCountSketch) Query(item uint64) int64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.Query(item)
}

// QueryBatch writes the windowed estimate of items[j] into dst[j] and
// returns dst, appending if dst is short (pass nil to allocate).
func (w *EpochWindowedCountSketch) QueryBatch(items []uint64, dst []int64) []int64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.QueryBatch(items, dst)
}

// Tick rotates the window by one bucket after cutting an epoch.
func (w *EpochWindowedCountSketch) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advanceLocked()
	w.viewMu.Lock()
	w.view.Tick()
	w.viewMu.Unlock()
}

// Buckets returns the number of ring buckets B.
func (w *EpochWindowedCountSketch) Buckets() int { return w.view.Buckets() }

// BucketItems returns 0: epoch windows are always Tick-driven.
func (w *EpochWindowedCountSketch) BucketItems() int { return w.view.BucketItems() }

// Rotations returns the number of bucket rotations performed so far.
func (w *EpochWindowedCountSketch) Rotations() uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.Rotations()
}

// WindowVolume returns the number of drained items in the live window.
func (w *EpochWindowedCountSketch) WindowVolume() uint64 {
	w.viewMu.Lock()
	defer w.viewMu.Unlock()
	return w.view.WindowVolume()
}

// MemoryBits returns the ring-plus-private-buffers footprint in bits.
func (w *EpochWindowedCountSketch) MemoryBits() int { return w.view.MemoryBits() + w.privateBits() }

// Options returns the bucket sketch configuration with defaults applied.
func (w *EpochWindowedCountSketch) Options() Options { return w.view.opt }

// EpochWindowedDistinct is an epoch-merged sliding-window distinct
// estimator. Sound under epochs because — unlike the sharded composition
// — all private sketches merge into one ring, so Linear Counting reads a
// single view.
type EpochWindowedDistinct struct {
	*Epoch[*sketch.CMS]
	view *WindowedDistinct
}

// buildEpochWindowedDistinct realizes an
// EpochShardedBy(Windowed(DistinctOf)) spec.
func buildEpochWindowedDistinct(opt Options, buckets, bucketItems, writers int) (*EpochWindowedDistinct, error) {
	if bucketItems != 0 {
		return nil, fmt.Errorf("salsa: epoch windows are Tick-driven; bucketItems must be 0, got %d", bucketItems)
	}
	if err := validateEpochWriters(writers); err != nil {
		return nil, err
	}
	d, err := buildWindowedDistinct(opt, buckets, 0)
	if err != nil {
		return nil, err
	}
	return newEpochWindowedDistinct(d, writers), nil
}

func newEpochWindowedDistinct(d *WindowedDistinct, writers int) *EpochWindowedDistinct {
	ops := cmsRingOps(d.w.opt, false)
	ew := &EpochWindowedDistinct{view: d}
	ew.Epoch = newEpoch(writers, ops.New,
		func(buf *sketch.CMS, n uint64) {
			d.w.ring.Cur().MergeFrom(buf)
			d.w.ring.Wrote(n)
		},
		ops.Reset)
	return ew
}

// Update applies directly to the window's current bucket, serialized.
func (d *EpochWindowedDistinct) Update(item uint64, count int64) {
	d.viewMu.Lock()
	d.view.Update(item, count)
	d.viewMu.Unlock()
}

// Increment adds one occurrence of item to the current bucket.
func (d *EpochWindowedDistinct) Increment(item uint64) { d.Update(item, 1) }

// UpdateBatch applies directly to the current bucket, serialized.
func (d *EpochWindowedDistinct) UpdateBatch(items []uint64, count int64) {
	d.viewMu.Lock()
	d.view.UpdateBatch(items, count)
	d.viewMu.Unlock()
}

// Query returns the live-window frequency estimate.
func (d *EpochWindowedDistinct) Query(item uint64) uint64 {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.Query(item)
}

// Estimate returns the Linear Counting distinct estimate over the live
// window's merged view.
func (d *EpochWindowedDistinct) Estimate() (float64, error) {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.Estimate()
}

// StdError returns the estimator's relative standard error at a true
// windowed cardinality f0.
func (d *EpochWindowedDistinct) StdError(f0 float64) float64 { return d.view.StdError(f0) }

// Tick rotates the window by one bucket after cutting an epoch.
func (d *EpochWindowedDistinct) Tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advanceLocked()
	d.viewMu.Lock()
	d.view.Tick()
	d.viewMu.Unlock()
}

// Buckets returns the number of ring buckets B.
func (d *EpochWindowedDistinct) Buckets() int { return d.view.w.Buckets() }

// Rotations returns the number of bucket rotations performed so far.
func (d *EpochWindowedDistinct) Rotations() uint64 {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.Rotations()
}

// WindowVolume returns the number of drained items in the live window.
func (d *EpochWindowedDistinct) WindowVolume() uint64 {
	d.viewMu.Lock()
	defer d.viewMu.Unlock()
	return d.view.WindowVolume()
}

// MemoryBits returns the ring-plus-private-buffers footprint in bits.
func (d *EpochWindowedDistinct) MemoryBits() int { return d.view.MemoryBits() + d.privateBits() }

// Options returns the bucket sketch configuration with defaults applied.
func (d *EpochWindowedDistinct) Options() Options { return d.view.Options() }

// Compile-time checks that the epoch types satisfy Sketch.
var (
	_ Sketch = (*EpochCountMin)(nil)
	_ Sketch = (*EpochCountSketch)(nil)
	_ Sketch = (*EpochMonitor)(nil)
	_ Sketch = (*EpochDistinct)(nil)
	_ Sketch = (*EpochWindowedCountMin)(nil)
	_ Sketch = (*EpochWindowedCountSketch)(nil)
	_ Sketch = (*EpochWindowedDistinct)(nil)
)
