package main

import (
	"strings"
	"testing"
)

// TestRunStdin: items are read line by line; the planted heavy item must
// top the report.
func TestRunStdin(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 50; i++ {
		in.WriteString("heavy\n")
		in.WriteString("light-")
		in.WriteByte(byte('a' + i%26))
		in.WriteString("\n")
	}
	var out strings.Builder
	if err := run([]string{"-k", "3", "-width", "1024"}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "processed 100 items") {
		t.Fatalf("wrong volume:\n%s", got)
	}
	if !strings.Contains(got, " 1. item") || !strings.Contains(got, "estimate 50") {
		t.Fatalf("heavy item not reported on top:\n%s", got)
	}
}

// TestRunDataset: the synthetic-trace path reports k items for each mode.
func TestRunDataset(t *testing.T) {
	for _, mode := range []string{"salsa", "baseline", "tango"} {
		var out strings.Builder
		args := []string{"-dataset", "NY18", "-n", "20000", "-k", "5", "-width", "4096", "-mode", mode}
		if err := run(args, strings.NewReader(""), &out); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		got := out.String()
		if !strings.Contains(got, mode+" mode") || strings.Count(got, ". item") != 5 {
			t.Fatalf("mode %s: unexpected output:\n%s", mode, got)
		}
	}
}

// TestRunWindowed: -window tracks the live window and reports rotations.
func TestRunWindowed(t *testing.T) {
	var out strings.Builder
	args := []string{"-dataset", "NY18", "-n", "30000", "-k", "5", "-width", "4096",
		"-window", "-buckets", "3", "-bucketitems", "5000"}
	if err := run(args, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "window of last") || !strings.Contains(got, "rotations)") {
		t.Fatalf("windowed scope line missing:\n%s", got)
	}
}

// TestRunBadArgs: unknown modes, datasets, and flags error out.
func TestRunBadArgs(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown mode":    {"-mode", "nope"},
		"unknown dataset": {"-dataset", "nope"},
		"unknown flag":    {"-bogus"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
