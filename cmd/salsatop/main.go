// Command salsatop tracks heavy hitters over a stream using a SALSA
// Conservative Update sketch plus a top-k heap — the paper's heavy-hitter
// pipeline as a CLI. It reads one item per line from stdin (any string;
// hashed with BobHash), or generates a synthetic trace with -dataset.
//
// Usage:
//
//	salsatop -dataset NY18 -n 1000000 -k 10
//	cut -d' ' -f1 access.log | salsatop -k 20 -width 65536
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "generate this trace stand-in instead of reading stdin")
		n       = flag.Int("n", 1_000_000, "generated stream length")
		seed    = flag.Uint64("seed", 1, "generator/sketch seed")
		k       = flag.Int("k", 10, "number of top items to report")
		width   = flag.Int("width", 1<<14, "sketch row width (power of two)")
		mode    = flag.String("mode", "salsa", "counter backend: salsa, baseline, tango")
	)
	flag.Parse()

	var m Mode = salsaMode(*mode)
	monitor := salsa.NewMonitor(salsa.Options{Width: *width, Mode: m.mode, Seed: *seed}, *k)

	var volume uint64
	if *dataset != "" {
		ds, ok := stream.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "salsatop: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		for _, x := range ds.Generate(*n, *seed) {
			monitor.Process(x)
			volume++
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			monitor.Process(salsa.KeyBytes(sc.Bytes()))
			volume++
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "salsatop:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("processed %d items; sketch memory %d KB (%s mode)\n",
		volume, monitor.Sketch().MemoryBits()/8/1024, m.name)
	for i, e := range monitor.Top() {
		fmt.Printf("%2d. item %-20d estimate %d\n", i+1, e.Item, e.Count)
	}
}

// Mode pairs the flag spelling with the API mode.
type Mode struct {
	name string
	mode salsa.Mode
}

func salsaMode(s string) Mode {
	switch s {
	case "baseline":
		return Mode{s, salsa.ModeBaseline}
	case "tango":
		return Mode{s, salsa.ModeTango}
	case "salsa":
		return Mode{s, salsa.ModeSALSA}
	}
	fmt.Fprintf(os.Stderr, "salsatop: unknown mode %q\n", s)
	os.Exit(2)
	return Mode{}
}
