// Command salsatop tracks heavy hitters over a stream using a SALSA
// Conservative Update sketch plus a top-k heap — the paper's heavy-hitter
// pipeline as a CLI. It reads one item per line from stdin (any string;
// hashed with BobHash), or generates a synthetic trace with -dataset.
// With -window it tracks heavy hitters over a sliding window of the last
// -buckets × -bucketitems items instead of the whole stream.
//
// Usage:
//
//	salsatop -dataset NY18 -n 1000000 -k 10
//	cut -d' ' -f1 access.log | salsatop -k 20 -width 65536
//	tail -f access.log | salsatop -window -bucketitems 100000
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"salsa"
	"salsa/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "salsatop:", err)
		os.Exit(1)
	}
}

// run executes one salsatop invocation against the given stdin/stdout;
// main is only the exit-code shim so tests can drive the tool in-process.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("salsatop", flag.ContinueOnError)
	var (
		dataset     = fs.String("dataset", "", "generate this trace stand-in instead of reading stdin")
		n           = fs.Int("n", 1_000_000, "generated stream length")
		seed        = fs.Uint64("seed", 1, "generator/sketch seed")
		k           = fs.Int("k", 10, "number of top items to report")
		width       = fs.Int("width", 1<<14, "sketch row width (power of two)")
		mode        = fs.String("mode", "salsa", "counter backend: salsa, baseline, tango")
		window      = fs.Bool("window", false, "track a sliding window instead of the whole stream")
		buckets     = fs.Int("buckets", 4, "ring buckets for -window")
		bucketItems = fs.Int("bucketitems", 250_000, "items per bucket for -window")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		// The FlagSet has already reported the problem on stderr.
		return errors.New("invalid arguments")
	}

	m, err := salsaMode(*mode)
	if err != nil {
		return err
	}
	opt := salsa.Options{Width: *width, Mode: m.mode, Seed: *seed}

	// Both tracker shapes are one spec away from each other: the window
	// is a decorator, not a different constructor.
	spec := salsa.MonitorOf(opt, *k)
	if *window {
		spec = salsa.Windowed(spec, *buckets, *bucketItems)
	}
	built, err := salsa.Build(spec)
	if err != nil {
		return err
	}
	// The two trackers share the Process/Top/memory surface.
	monitor := built.(interface {
		Process(uint64)
		Top() []salsa.ItemCount
		MemoryBits() int
	})

	var volume uint64
	if *dataset != "" {
		ds, ok := stream.ByName(*dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q", *dataset)
		}
		for _, x := range ds.Generate(*n, *seed) {
			monitor.Process(x)
			volume++
		}
	} else {
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			monitor.Process(salsa.KeyBytes(sc.Bytes()))
			volume++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	scope := "whole stream"
	if wm, ok := monitor.(*salsa.WindowedMonitor); ok {
		scope = fmt.Sprintf("window of last %d items (%d rotations)", wm.WindowVolume(), wm.Rotations())
	}
	fmt.Fprintf(stdout, "processed %d items; sketch memory %d KB (%s mode, %s)\n",
		volume, monitor.MemoryBits()/8/1024, m.name, scope)
	for i, e := range monitor.Top() {
		fmt.Fprintf(stdout, "%2d. item %-20d estimate %d\n", i+1, e.Item, e.Count)
	}
	return nil
}

// Mode pairs the flag spelling with the API mode.
type Mode struct {
	name string
	mode salsa.Mode
}

func salsaMode(s string) (Mode, error) {
	switch s {
	case "baseline":
		return Mode{s, salsa.ModeBaseline}, nil
	case "tango":
		return Mode{s, salsa.ModeTango}, nil
	case "salsa":
		return Mode{s, salsa.ModeSALSA}, nil
	}
	return Mode{}, fmt.Errorf("unknown mode %q", s)
}
