package main

import (
	"context"
	"io"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"salsa"
	"salsa/internal/salsad"
)

// startServer runs a server-role run() invocation (aggregator or relay)
// on a background goroutine, returns its printed base URL, and gives the
// caller the pipe end whose closing shuts it down.
func startServer(t *testing.T, ctx context.Context, args ...string) (baseURL string, shutdown func() string) {
	t.Helper()
	pr, pw := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer outW.Close()
		done <- run(ctx, args, pr, outW)
	}()
	// The first output line carries the bound address (for a relay it is
	// the first URL on the line; the second is its upstream).
	buf := make([]byte, 256)
	n, err := outR.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`http://[0-9.]+:[0-9]+`).FindString(string(buf[:n]))
	if m == "" {
		t.Fatalf("no listen address in %q", buf[:n])
	}
	return m, func() string {
		pw.Close() // stdin EOF → graceful shutdown
		rest, _ := io.ReadAll(outR)
		if err := <-done; err != nil {
			t.Fatalf("server run: %v", err)
		}
		return string(rest)
	}
}

func startAggregator(t *testing.T, extraArgs ...string) (baseURL string, shutdown func() string) {
	t.Helper()
	args := append([]string{"-mode", "aggregator", "-listen", "127.0.0.1:0", "-width", "4096"}, extraArgs...)
	return startServer(t, context.Background(), args...)
}

// TestAgentAggregatorRoundTrip drives both CLI roles end to end over a
// real socket: the agent sketches a generated trace, ships deltas, and
// the aggregator's shutdown summary accounts for the applied frames.
func TestAgentAggregatorRoundTrip(t *testing.T) {
	base, shutdown := startAggregator(t)

	var out strings.Builder
	err := run(context.Background(), []string{
		"-mode", "agent", "-addr", base, "-id", "edge-test",
		"-dataset", "NY18", "-n", "30000", "-width", "4096", "-pushevery", "10000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "agent edge-test") || !strings.Contains(got, "30000 items") {
		t.Fatalf("agent summary missing:\n%s", got)
	}

	tail := shutdown()
	if !strings.Contains(tail, "frames applied") || strings.Contains(tail, "0 frames applied") {
		t.Fatalf("aggregator summary did not account for pushes:\n%s", tail)
	}
}

// TestAgentStdinPath feeds line-delimited items through stdin, the
// production path for piping logs into an edge agent.
func TestAgentStdinPath(t *testing.T) {
	base, shutdown := startAggregator(t)
	defer shutdown()

	var in strings.Builder
	for i := 0; i < 500; i++ {
		in.WriteString("flow-")
		in.WriteByte(byte('a' + i%7))
		in.WriteString("\n")
	}
	var out strings.Builder
	err := run(context.Background(), []string{
		"-mode", "agent", "-addr", base, "-id", "edge-stdin", "-width", "4096", "-pushevery", "200",
	}, strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "500 items") {
		t.Fatalf("wrong volume:\n%s", out.String())
	}
}

// TestAgentAgainstLibraryAggregator points the CLI agent at a
// library-embedded aggregator (httptest + salsad.Handler): the two
// surfaces are the same protocol.
func TestAgentAgainstLibraryAggregator(t *testing.T) {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: salsa.CountMinOf(salsa.Options{Width: 4096, Merge: salsa.MergeSum, Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(salsad.Handler(agg))
	defer srv.Close()

	var out strings.Builder
	err = run(context.Background(), []string{
		"-mode", "agent", "-addr", srv.URL, "-id", "edge-lib",
		"-dataset", "NY18", "-n", "10000", "-width", "4096", "-pushevery", "4000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats().Applied == 0 {
		t.Fatal("no frames reached the library aggregator")
	}
	if top, err := agg.Top(3); err != nil || len(top) == 0 {
		t.Fatalf("no heavy hitters after CLI ingest: top=%v err=%v", top, err)
	}
}

// TestRelayChainOverSockets stands up the full three-tier chain — root
// aggregator, relay, edge agent — over real sockets. The agent's frames
// land in the relay's table; the relay's shutdown ships the merged delta
// upstream; the root's summary accounts for it.
func TestRelayChainOverSockets(t *testing.T) {
	rootURL, shutdownRoot := startAggregator(t)
	// A long push interval keeps the cadence loop quiet; the graceful
	// shutdown's final push is what ships the table — deterministically.
	relayURL, shutdownRelay := startServer(t, context.Background(),
		"-mode", "relay", "-listen", "127.0.0.1:0", "-addr", rootURL,
		"-id", "relay-test", "-width", "4096", "-pushinterval", "1m")

	var out strings.Builder
	err := run(context.Background(), []string{
		"-mode", "agent", "-addr", relayURL, "-id", "edge-under-relay",
		"-dataset", "NY18", "-n", "20000", "-width", "4096", "-pushevery", "8000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}

	relayTail := shutdownRelay()
	if !strings.Contains(relayTail, "frames applied downstream") ||
		strings.Contains(relayTail, "0 frames applied downstream") {
		t.Fatalf("relay absorbed nothing:\n%s", relayTail)
	}
	if !strings.Contains(relayTail, "shipped upstream") ||
		strings.Contains(relayTail, "0 shipped upstream") {
		t.Fatalf("relay shipped nothing upstream:\n%s", relayTail)
	}
	rootTail := shutdownRoot()
	if !strings.Contains(rootTail, "frames applied") || strings.Contains(rootTail, "0 frames applied") {
		t.Fatalf("root never saw the relay's frames:\n%s", rootTail)
	}
}

// TestDurableShutdownSnapshot: a -datadir aggregator persists a final
// snapshot at shutdown, and a restart over the same directory restores
// it instead of starting empty.
func TestDurableShutdownSnapshot(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startAggregator(t, "-datadir", dir)

	var out strings.Builder
	err := run(context.Background(), []string{
		"-mode", "agent", "-addr", base, "-id", "edge-durable",
		"-dataset", "NY18", "-n", "10000", "-width", "4096", "-pushevery", "4000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	tail := shutdown()
	if !strings.Contains(tail, "final snapshot persisted") {
		t.Fatalf("no final snapshot in shutdown output:\n%s", tail)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.salsad"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot files in %s: %v", dir, err)
	}

	// The restarted process must restore cleanly (no resync warning) and
	// hand the agent its persisted frontier.
	_, shutdown2 := startAggregator(t, "-datadir", dir)
	tail2 := shutdown2()
	if strings.Contains(tail2, "restore rejected") {
		t.Fatalf("restart rejected its own snapshot:\n%s", tail2)
	}
}

// TestServerSignalShutdown cancels the server's context — the in-process
// stand-in for SIGTERM — and expects the same graceful summary the
// stdin-EOF path produces.
func TestServerSignalShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	defer pw.Close()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer outW.Close()
		done <- run(ctx, []string{"-mode", "aggregator", "-listen", "127.0.0.1:0", "-width", "4096"}, pr, outW)
	}()
	buf := make([]byte, 256)
	if _, err := outR.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel() // SIGTERM
	rest, _ := io.ReadAll(outR)
	if err := <-done; err != nil {
		t.Fatalf("signal shutdown returned error: %v", err)
	}
	if !strings.Contains(string(rest), "shutting down") {
		t.Fatalf("no graceful summary after signal:\n%s", rest)
	}
}

// TestAgentInterruptedFlush: an agent whose context is already cancelled
// stops ingesting immediately but still exits cleanly through the final
// flush path.
func TestAgentInterruptedFlush(t *testing.T) {
	base, shutdown := startAggregator(t)
	defer shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, []string{
		"-mode", "agent", "-addr", base, "-id", "edge-sigterm",
		"-dataset", "NY18", "-n", "30000", "-width", "4096",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "agent edge-sigterm") {
		t.Fatalf("no summary after interrupt:\n%s", out.String())
	}
}

// TestRunBadArgs: broken invocations error out instead of half-starting.
func TestRunBadArgs(t *testing.T) {
	for name, args := range map[string][]string{
		"no mode":         {},
		"unknown mode":    {"-mode", "nope"},
		"unknown flag":    {"-bogus"},
		"bad spec":        {"-mode", "aggregator", "-spec", "nope("},
		"agent no addr":   {"-mode", "agent"},
		"bad dataset":     {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-dataset", "nope"},
		"windowed spec":   {"-mode", "aggregator", "-spec", "windowed(4,100,cms)"},
		"agent bad spec":  {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-spec", "trailing junk"},
		"unreachable agg": {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-dataset", "NY18", "-n", "100", "-timeout", "50ms", "-attempts", "1"},
	} {
		var out strings.Builder
		if err := run(context.Background(), args, strings.NewReader(""), &out); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

// TestHelpExitsClean: -h prints usage and returns nil like the other cmds.
func TestHelpExitsClean(t *testing.T) {
	if err := run(context.Background(), []string{"-h"}, strings.NewReader(""), io.Discard); err != nil {
		t.Fatal(err)
	}
}
