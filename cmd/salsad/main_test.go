package main

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"salsa"
	"salsa/internal/salsad"
)

// startAggregator runs the aggregator run() path on a background
// goroutine, returns its printed base URL, and gives the caller the pipe
// end whose closing shuts it down.
func startAggregator(t *testing.T, extraArgs ...string) (baseURL string, shutdown func() string) {
	t.Helper()
	pr, pw := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	args := append([]string{"-mode", "aggregator", "-listen", "127.0.0.1:0", "-width", "4096"}, extraArgs...)
	go func() {
		defer outW.Close()
		done <- run(args, pr, outW)
	}()
	// The first output line carries the bound address.
	buf := make([]byte, 256)
	n, err := outR.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`http://[0-9.]+:[0-9]+`).FindString(string(buf[:n]))
	if m == "" {
		t.Fatalf("no listen address in %q", buf[:n])
	}
	return m, func() string {
		pw.Close() // stdin EOF → graceful shutdown
		rest, _ := io.ReadAll(outR)
		if err := <-done; err != nil {
			t.Fatalf("aggregator run: %v", err)
		}
		return string(rest)
	}
}

// TestAgentAggregatorRoundTrip drives both CLI roles end to end over a
// real socket: the agent sketches a generated trace, ships deltas, and
// the aggregator's shutdown summary accounts for the applied frames.
func TestAgentAggregatorRoundTrip(t *testing.T) {
	base, shutdown := startAggregator(t)

	var out strings.Builder
	err := run([]string{
		"-mode", "agent", "-addr", base, "-id", "edge-test",
		"-dataset", "NY18", "-n", "30000", "-width", "4096", "-pushevery", "10000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "agent edge-test") || !strings.Contains(got, "30000 items") {
		t.Fatalf("agent summary missing:\n%s", got)
	}

	tail := shutdown()
	if !strings.Contains(tail, "frames applied") || strings.Contains(tail, "0 frames applied") {
		t.Fatalf("aggregator summary did not account for pushes:\n%s", tail)
	}
}

// TestAgentStdinPath feeds line-delimited items through stdin, the
// production path for piping logs into an edge agent.
func TestAgentStdinPath(t *testing.T) {
	base, shutdown := startAggregator(t)
	defer shutdown()

	var in strings.Builder
	for i := 0; i < 500; i++ {
		in.WriteString("flow-")
		in.WriteByte(byte('a' + i%7))
		in.WriteString("\n")
	}
	var out strings.Builder
	err := run([]string{
		"-mode", "agent", "-addr", base, "-id", "edge-stdin", "-width", "4096", "-pushevery", "200",
	}, strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "500 items") {
		t.Fatalf("wrong volume:\n%s", out.String())
	}
}

// TestAgentAgainstLibraryAggregator points the CLI agent at a
// library-embedded aggregator (httptest + salsad.Handler): the two
// surfaces are the same protocol.
func TestAgentAgainstLibraryAggregator(t *testing.T) {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec: salsa.CountMinOf(salsa.Options{Width: 4096, Merge: salsa.MergeSum, Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(salsad.Handler(agg))
	defer srv.Close()

	var out strings.Builder
	err = run([]string{
		"-mode", "agent", "-addr", srv.URL, "-id", "edge-lib",
		"-dataset", "NY18", "-n", "10000", "-width", "4096", "-pushevery", "4000",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats().Applied == 0 {
		t.Fatal("no frames reached the library aggregator")
	}
	if top, err := agg.Top(3); err != nil || len(top) == 0 {
		t.Fatalf("no heavy hitters after CLI ingest: top=%v err=%v", top, err)
	}
}

// TestRunBadArgs: broken invocations error out instead of half-starting.
func TestRunBadArgs(t *testing.T) {
	for name, args := range map[string][]string{
		"no mode":         {},
		"unknown mode":    {"-mode", "nope"},
		"unknown flag":    {"-bogus"},
		"bad spec":        {"-mode", "aggregator", "-spec", "nope("},
		"agent no addr":   {"-mode", "agent"},
		"bad dataset":     {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-dataset", "nope"},
		"windowed spec":   {"-mode", "aggregator", "-spec", "windowed(4,100,cms)"},
		"agent bad spec":  {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-spec", "trailing junk"},
		"unreachable agg": {"-mode", "agent", "-addr", "http://127.0.0.1:1", "-id", "x", "-dataset", "NY18", "-n", "100", "-timeout", "50ms", "-attempts", "1"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

// TestHelpExitsClean: -h prints usage and returns nil like the other cmds.
func TestHelpExitsClean(t *testing.T) {
	if err := run([]string{"-h"}, strings.NewReader(""), io.Discard); err != nil {
		t.Fatal(err)
	}
}
