// Command salsad runs one node of the distributed aggregation tier: an
// aggregator that accepts delta pushes from edge agents and serves
// cluster-wide queries, or an agent that sketches a local stream and
// ships deltas upstream with retries, idempotent sequencing, and
// automatic resync.
//
// Usage:
//
//	salsad -mode aggregator -listen 127.0.0.1:7777 -spec cms
//	salsad -mode agent -addr http://127.0.0.1:7777 -id edge-nyc -dataset NY18 -n 1000000
//	cut -d' ' -f1 access.log | salsad -mode agent -addr http://127.0.0.1:7777 -id edge-fra
//
// Both sides must be built with the same -spec, -width, and -seed: the
// aggregator rejects incompatible envelopes. The aggregator serves until
// stdin closes (run it under a supervisor; EOF is the shutdown signal).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"salsa"
	"salsa/internal/salsad"
	"salsa/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "salsad:", err)
		os.Exit(1)
	}
}

// run executes one salsad invocation against the given stdin/stdout;
// main is only the exit-code shim so tests can drive the tool in-process.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("salsad", flag.ContinueOnError)
	var (
		mode  = fs.String("mode", "", "role: aggregator or agent")
		spec  = fs.String("spec", "cms", "topology expression (salsa.ParseSpec; agents may wrap in epoch(...))")
		width = fs.Int("width", 1<<14, "sketch row width (power of two)")
		seed  = fs.Uint64("seed", 1, "shared hash seed; must match across the cluster")

		// Aggregator flags.
		listen      = fs.String("listen", "127.0.0.1:0", "aggregator listen address")
		leaseTTL    = fs.Duration("lease", salsad.DefaultLeaseTTL, "agent liveness lease")
		maxEnvelope = fs.Int("maxenvelope", salsad.DefaultMaxEnvelopeBytes, "max decompressed envelope bytes per push")

		// Agent flags.
		addr      = fs.String("addr", "", "aggregator base URL (agent mode)")
		id        = fs.String("id", "", "agent id (agent mode; defaults to the hostname)")
		dataset   = fs.String("dataset", "", "generate this trace stand-in instead of reading stdin")
		n         = fs.Int("n", 1_000_000, "generated stream length")
		pushEvery = fs.Int("pushevery", 100_000, "push a delta frame every this many items")
		attempts  = fs.Int("attempts", 4, "delivery attempts per push before giving up the round")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-push deadline")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		// The FlagSet has already reported the problem on stderr.
		return errors.New("invalid arguments")
	}

	opt := salsa.Options{Width: *width, Merge: salsa.MergeSum, Seed: *seed}
	topo, err := salsa.ParseSpec(*spec, opt)
	if err != nil {
		return err
	}

	switch *mode {
	case "aggregator":
		return runAggregator(topo, *listen, *leaseTTL, *maxEnvelope, stdin, stdout)
	case "agent":
		return runAgent(agentParams{
			topo: topo, addr: *addr, id: *id,
			dataset: *dataset, n: *n, seed: *seed,
			pushEvery: *pushEvery, attempts: *attempts, timeout: *timeout,
		}, stdin, stdout)
	default:
		return fmt.Errorf("unknown -mode %q (want aggregator or agent)", *mode)
	}
}

// runAggregator serves the cluster-wide query surface until stdin closes.
func runAggregator(topo salsa.Spec, listen string, lease time.Duration, maxEnv int, stdin io.Reader, stdout io.Writer) error {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec:             topo,
		LeaseTTL:         lease,
		MaxEnvelopeBytes: maxEnv,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "aggregator listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: salsad.Handler(agg)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// Serve until the operator closes stdin (or the listener fails).
	eof := make(chan struct{})
	go func() {
		io.Copy(io.Discard, stdin) //nolint:errcheck // EOF is the signal
		close(eof)
	}()
	select {
	case <-eof:
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // best-effort drain
	st := agg.Stats()
	fmt.Fprintf(stdout, "shutting down: %d frames applied, %d duplicates, %d resyncs, %d heartbeats\n",
		st.Applied, st.Duplicates, st.Resyncs, st.Heartbeats)
	return nil
}

type agentParams struct {
	topo      salsa.Spec
	addr, id  string
	dataset   string
	n         int
	seed      uint64
	pushEvery int
	attempts  int
	timeout   time.Duration
}

// runAgent sketches stdin (or a generated trace) and ships deltas until
// the stream ends, then flushes a final frame and prints a summary.
func runAgent(p agentParams, stdin io.Reader, stdout io.Writer) error {
	if p.addr == "" {
		return errors.New("agent mode needs -addr")
	}
	if p.id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			return errors.New("agent mode needs -id (hostname unavailable)")
		}
		if len(host) > salsad.MaxAgentIDLen {
			host = host[:salsad.MaxAgentIDLen]
		}
		p.id = host
	}
	if p.pushEvery <= 0 {
		p.pushEvery = 100_000
	}
	transport := &salsad.HTTPTransport{Base: p.addr, Client: &http.Client{Timeout: p.timeout}}

	// Rejoin-aware start: ask the aggregator where this id left off, so a
	// restarted agent picks a fresh generation instead of a burned one.
	gen, cursor := uint64(1), uint64(0)
	rctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	if g, c, err := salsad.Resume(rctx, transport, p.id); err == nil {
		gen, cursor = g, c
	}
	cancel()

	// A small local heavy-hitter monitor supplies candidate items with
	// each frame; the aggregator evaluates its pooled candidates against
	// the cluster-wide merged sketch to answer /v1/top.
	monitor := salsa.MustBuild(salsa.MonitorOf(salsa.Options{
		Width: 1 << 10, Seed: p.seed,
	}, 64)).(interface {
		Process(uint64)
		Top() []salsa.ItemCount
	})

	ag, err := salsad.NewAgent(salsad.AgentConfig{
		ID:          p.id,
		Spec:        p.topo,
		Transport:   transport,
		Generation:  gen,
		StartCursor: cursor,
		MaxAttempts: p.attempts,
		Candidates: func() []uint64 {
			top := monitor.Top()
			items := make([]uint64, len(top))
			for i, e := range top {
				items[i] = e.Item
			}
			return items
		},
	})
	if err != nil {
		return err
	}

	push := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		defer cancel()
		return ag.PushOnce(ctx)
	}
	var sinceLast int
	ingest := func(item uint64) error {
		ag.Ingest(item)
		monitor.Process(item)
		if sinceLast++; sinceLast >= p.pushEvery {
			sinceLast = 0
			if err := push(); err != nil {
				// A failed round leaves the frame frozen; the next round
				// retries it byte-identically. Keep ingesting.
				fmt.Fprintf(stdout, "push failed (will retry): %v\n", err)
			}
		}
		return nil
	}

	if p.dataset != "" {
		ds, ok := stream.ByName(p.dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q", p.dataset)
		}
		for _, x := range ds.Generate(p.n, p.seed) {
			if err := ingest(x); err != nil {
				return err
			}
		}
	} else {
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			if err := ingest(salsa.KeyBytes(sc.Bytes())); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	// Final flush: everything ingested must be acknowledged before exit.
	for tries := 0; !ag.Synced(); tries++ {
		if err := push(); err != nil {
			if tries >= 2 {
				return err
			}
			fmt.Fprintf(stdout, "final push failed (retrying): %v\n", err)
		}
	}
	st := ag.Stats()
	fmt.Fprintf(stdout, "agent %s gen %d: %d items in %d frames (%d retries, %d resyncs), %d wire bytes\n",
		p.id, ag.Gen(), ag.Frontier()-cursor, st.FramesAcked, st.Retries, st.Resyncs, st.WireBytes)
	return nil
}
