// Command salsad runs one node of the distributed aggregation tier: an
// aggregator that accepts delta pushes from edge agents and serves
// cluster-wide queries, an agent that sketches a local stream and ships
// deltas upstream with retries, idempotent sequencing, and automatic
// resync, or a relay that does both — aggregating a subtree downstream
// and pushing its merged table up to the next tier.
//
// Usage:
//
//	salsad -mode aggregator -listen 127.0.0.1:7777 -spec cms -datadir /var/lib/salsad
//	salsad -mode relay -listen 127.0.0.1:7778 -addr http://127.0.0.1:7777 -id relay-eu
//	salsad -mode agent -addr http://127.0.0.1:7778 -id edge-fra -dataset NY18 -n 1000000
//	cut -d' ' -f1 access.log | salsad -mode agent -addr http://127.0.0.1:7778 -id edge-fra
//
// All tiers must be built with the same -spec, -width, and -seed: the
// aggregator rejects incompatible envelopes. Server roles run until
// stdin closes or SIGTERM/SIGINT arrives; shutdown is graceful — an
// agent attempts one final push under a deadline, and a durable
// aggregator/relay persists a final snapshot, so a redeploy loses
// nothing.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"salsa"
	"salsa/internal/salsad"
	"salsa/internal/stream"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "salsad:", err)
		os.Exit(1)
	}
}

// run executes one salsad invocation against the given stdin/stdout;
// main is only the signal/exit-code shim so tests can drive the tool
// in-process and cancel ctx to simulate SIGTERM.
func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("salsad", flag.ContinueOnError)
	var (
		mode  = fs.String("mode", "", "role: aggregator, relay, or agent")
		spec  = fs.String("spec", "cms", "topology expression (salsa.ParseSpec; agents may wrap in epoch(...))")
		width = fs.Int("width", 1<<14, "sketch row width (power of two)")
		seed  = fs.Uint64("seed", 1, "shared hash seed; must match across the cluster")

		// Aggregator/relay flags.
		listen       = fs.String("listen", "127.0.0.1:0", "aggregator/relay listen address")
		leaseTTL     = fs.Duration("lease", salsad.DefaultLeaseTTL, "agent liveness lease")
		maxEnvelope  = fs.Int("maxenvelope", salsad.DefaultMaxEnvelopeBytes, "max decompressed envelope bytes per push")
		dataDir      = fs.String("datadir", "", "snapshot directory; empty disables durability")
		persistEvery = fs.Int("persistevery", salsad.DefaultSnapshotEvery, "persist after this many applied frames (needs -datadir)")

		// Agent/relay upstream flags.
		addr         = fs.String("addr", "", "upstream aggregator base URL (agent and relay modes)")
		id           = fs.String("id", "", "agent/relay id (defaults to the hostname)")
		dataset      = fs.String("dataset", "", "generate this trace stand-in instead of reading stdin")
		n            = fs.Int("n", 1_000_000, "generated stream length")
		pushEvery    = fs.Int("pushevery", 100_000, "push a delta frame every this many items (agent mode)")
		pushInterval = fs.Duration("pushinterval", 2*time.Second, "upstream push cadence (relay mode)")
		attempts     = fs.Int("attempts", 4, "delivery attempts per push before giving up the round")
		timeout      = fs.Duration("timeout", 10*time.Second, "per-push deadline")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		// The FlagSet has already reported the problem on stderr.
		return errors.New("invalid arguments")
	}

	opt := salsa.Options{Width: *width, Merge: salsa.MergeSum, Seed: *seed}
	topo, err := salsa.ParseSpec(*spec, opt)
	if err != nil {
		return err
	}

	switch *mode {
	case "aggregator":
		return runAggregator(ctx, aggParams{
			topo: topo, listen: *listen, lease: *leaseTTL, maxEnv: *maxEnvelope,
			dataDir: *dataDir, persistEvery: *persistEvery,
		}, stdin, stdout)
	case "relay":
		return runRelay(ctx, relayParams{
			topo: topo, listen: *listen, lease: *leaseTTL, maxEnv: *maxEnvelope,
			dataDir: *dataDir, persistEvery: *persistEvery,
			addr: *addr, id: *id, pushInterval: *pushInterval,
			attempts: *attempts, timeout: *timeout,
		}, stdin, stdout)
	case "agent":
		return runAgent(ctx, agentParams{
			topo: topo, addr: *addr, id: *id,
			dataset: *dataset, n: *n, seed: *seed,
			pushEvery: *pushEvery, attempts: *attempts, timeout: *timeout,
		}, stdin, stdout)
	default:
		return fmt.Errorf("unknown -mode %q (want aggregator, relay, or agent)", *mode)
	}
}

// nodeID defaults an empty id to the (truncated) hostname.
func nodeID(id string) (string, error) {
	if id != "" {
		return id, nil
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		return "", errors.New("needs -id (hostname unavailable)")
	}
	if len(host) > salsad.MaxAgentIDLen {
		host = host[:salsad.MaxAgentIDLen]
	}
	return host, nil
}

// serveUntilDone runs srv on ln until ctx is cancelled, stdin closes, or
// the listener fails, then drains in-flight requests.
func serveUntilDone(ctx context.Context, srv *http.Server, ln net.Listener, stdin io.Reader) error {
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	eof := make(chan struct{})
	go func() {
		io.Copy(io.Discard, stdin) //nolint:errcheck // EOF is the signal
		close(eof)
	}()
	select {
	case <-ctx.Done():
	case <-eof:
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx) //nolint:errcheck // best-effort drain
	return nil
}

type aggParams struct {
	topo         salsa.Spec
	listen       string
	lease        time.Duration
	maxEnv       int
	dataDir      string
	persistEvery int
}

// runAggregator serves the cluster-wide query surface until shutdown,
// then persists a final snapshot (when durable).
func runAggregator(ctx context.Context, p aggParams, stdin io.Reader, stdout io.Writer) error {
	agg, err := salsad.NewAggregator(salsad.AggregatorConfig{
		Spec:             p.topo,
		LeaseTTL:         p.lease,
		MaxEnvelopeBytes: p.maxEnv,
		DataDir:          p.dataDir,
		SnapshotEvery:    p.persistEvery,
	})
	if err != nil {
		return err
	}
	if err := agg.RestoreError(); err != nil {
		fmt.Fprintf(stdout, "snapshot restore rejected (starting empty, agents will resync): %v\n", err)
	}
	ln, err := net.Listen("tcp", p.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "aggregator listening on http://%s\n", ln.Addr())

	if err := serveUntilDone(ctx, &http.Server{Handler: salsad.Handler(agg)}, ln, stdin); err != nil {
		return err
	}
	if p.dataDir != "" {
		if epoch, err := agg.Persist(); err != nil {
			fmt.Fprintf(stdout, "final snapshot failed: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "final snapshot persisted (epoch %d)\n", epoch)
		}
	}
	st := agg.Stats()
	fmt.Fprintf(stdout, "shutting down: %d frames applied, %d duplicates, %d resyncs, %d heartbeats\n",
		st.Applied, st.Duplicates, st.Resyncs, st.Heartbeats)
	return nil
}

type relayParams struct {
	topo         salsa.Spec
	listen       string
	lease        time.Duration
	maxEnv       int
	dataDir      string
	persistEvery int
	addr         string
	id           string
	pushInterval time.Duration
	attempts     int
	timeout      time.Duration
}

// runRelay serves a downstream aggregator surface while pushing the
// merged table upstream on a cadence; shutdown attempts one final
// upstream push and persists a final snapshot (when durable).
func runRelay(ctx context.Context, p relayParams, stdin io.Reader, stdout io.Writer) error {
	if p.addr == "" {
		return errors.New("relay mode needs -addr")
	}
	id, err := nodeID(p.id)
	if err != nil {
		return fmt.Errorf("relay mode %w", err)
	}
	if p.pushInterval <= 0 {
		p.pushInterval = 2 * time.Second
	}
	relay, err := salsad.NewRelay(salsad.RelayConfig{
		ID:               id,
		Spec:             p.topo,
		Upstream:         &salsad.HTTPTransport{Base: p.addr, Client: &http.Client{Timeout: p.timeout}},
		DataDir:          p.dataDir,
		SnapshotEvery:    p.persistEvery,
		LeaseTTL:         p.lease,
		MaxEnvelopeBytes: p.maxEnv,
		MaxAttempts:      p.attempts,
	})
	if err != nil {
		return err
	}
	if err := relay.RestoreError(); err != nil {
		fmt.Fprintf(stdout, "snapshot restore rejected (rejoining via resync): %v\n", err)
	}
	ln, err := net.Listen("tcp", p.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "relay %s listening on http://%s, pushing to %s\n", id, ln.Addr(), p.addr)

	// Upstream loop: push the merged-table delta every interval until
	// shutdown. Failed rounds leave the frozen frame for the next tick.
	loopDone := make(chan struct{})
	loopCtx, stopLoop := context.WithCancel(context.Background())
	go func() {
		defer close(loopDone)
		tick := time.NewTicker(p.pushInterval)
		defer tick.Stop()
		for {
			select {
			case <-loopCtx.Done():
				return
			case <-tick.C:
				pctx, cancel := context.WithTimeout(loopCtx, p.timeout)
				if err := relay.PushOnce(pctx); err != nil && loopCtx.Err() == nil {
					fmt.Fprintf(stdout, "upstream push failed (will retry): %v\n", err)
				}
				cancel()
			}
		}
	}()

	srvErr := serveUntilDone(ctx, &http.Server{Handler: salsad.Handler(relay.Agg())}, ln, stdin)
	stopLoop()
	<-loopDone
	if srvErr != nil {
		return srvErr
	}

	// Graceful exit: ship what the table holds, then persist it.
	fctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	if err := relay.PushOnce(fctx); err != nil {
		fmt.Fprintf(stdout, "final upstream push failed: %v\n", err)
	}
	cancel()
	if p.dataDir != "" {
		if epoch, err := relay.Persist(); err != nil {
			fmt.Fprintf(stdout, "final snapshot failed: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "final snapshot persisted (epoch %d)\n", epoch)
		}
	}
	st, up := relay.Agg().Stats(), relay.Stats()
	fmt.Fprintf(stdout, "relay %s gen %d shutting down: %d frames applied downstream, %d shipped upstream (%d retries, %d resyncs)\n",
		id, relay.Gen(), st.Applied, up.FramesAcked, up.Retries, up.Resyncs)
	return nil
}

type agentParams struct {
	topo      salsa.Spec
	addr, id  string
	dataset   string
	n         int
	seed      uint64
	pushEvery int
	attempts  int
	timeout   time.Duration
}

// runAgent sketches stdin (or a generated trace) and ships deltas until
// the stream ends or ctx is cancelled (SIGTERM/SIGINT), then cuts the
// epoch layer and flushes a final frame under a deadline.
func runAgent(ctx context.Context, p agentParams, stdin io.Reader, stdout io.Writer) error {
	if p.addr == "" {
		return errors.New("agent mode needs -addr")
	}
	id, err := nodeID(p.id)
	if err != nil {
		return fmt.Errorf("agent mode %w", err)
	}
	p.id = id
	if p.pushEvery <= 0 {
		p.pushEvery = 100_000
	}
	transport := &salsad.HTTPTransport{Base: p.addr, Client: &http.Client{Timeout: p.timeout}}

	// Rejoin-aware start: ask the aggregator where this id left off, so a
	// restarted agent picks a fresh generation instead of a burned one.
	gen, cursor := uint64(1), uint64(0)
	rctx, cancel := context.WithTimeout(ctx, p.timeout)
	if g, c, err := salsad.Resume(rctx, transport, p.id); err == nil {
		gen, cursor = g, c
	}
	cancel()

	// A small local heavy-hitter monitor supplies candidate items with
	// each frame; the aggregator evaluates its pooled candidates against
	// the cluster-wide merged sketch to answer /v1/top.
	monitor := salsa.MustBuild(salsa.MonitorOf(salsa.Options{
		Width: 1 << 10, Seed: p.seed,
	}, 64)).(interface {
		Process(uint64)
		Top() []salsa.ItemCount
	})

	ag, err := salsad.NewAgent(salsad.AgentConfig{
		ID:          p.id,
		Spec:        p.topo,
		Transport:   transport,
		Generation:  gen,
		StartCursor: cursor,
		MaxAttempts: p.attempts,
		Candidates: func() []uint64 {
			top := monitor.Top()
			items := make([]uint64, len(top))
			for i, e := range top {
				items[i] = e.Item
			}
			return items
		},
	})
	if err != nil {
		return err
	}

	push := func(ctx context.Context) error {
		pctx, cancel := context.WithTimeout(ctx, p.timeout)
		defer cancel()
		return ag.PushOnce(pctx)
	}
	var sinceLast int
	interrupted := errors.New("interrupted")
	ingest := func(item uint64) error {
		if ctx.Err() != nil {
			return interrupted
		}
		ag.Ingest(item)
		monitor.Process(item)
		if sinceLast++; sinceLast >= p.pushEvery {
			sinceLast = 0
			if err := push(ctx); err != nil {
				// A failed round leaves the frame frozen; the next round
				// retries it byte-identically. Keep ingesting.
				fmt.Fprintf(stdout, "push failed (will retry): %v\n", err)
			}
		}
		return nil
	}

	if p.dataset != "" {
		ds, ok := stream.ByName(p.dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q", p.dataset)
		}
		for _, x := range ds.Generate(p.n, p.seed) {
			if err := ingest(x); err != nil && !errors.Is(err, interrupted) {
				return err
			} else if err != nil {
				break
			}
		}
	} else {
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			if err := ingest(salsa.KeyBytes(sc.Bytes())); err != nil {
				if errors.Is(err, interrupted) {
					break
				}
				return err
			}
		}
		if err := sc.Err(); err != nil && ctx.Err() == nil {
			return err
		}
	}

	// Final flush: everything ingested must be acknowledged before exit.
	// Runs under its own deadline (detached from ctx) so a SIGTERM still
	// gets its state out — that is the point of graceful shutdown.
	fctx, fcancel := context.WithTimeout(context.Background(), 3*p.timeout)
	defer fcancel()
	for tries := 0; !ag.Synced(); tries++ {
		if err := push(fctx); err != nil {
			if tries >= 2 || fctx.Err() != nil {
				return err
			}
			fmt.Fprintf(stdout, "final push failed (retrying): %v\n", err)
		}
	}
	st := ag.Stats()
	fmt.Fprintf(stdout, "agent %s gen %d: %d items in %d frames (%d retries, %d resyncs), %d wire bytes\n",
		p.id, ag.Gen(), ag.Frontier()-cursor, st.FramesAcked, st.Retries, st.Resyncs, st.WireBytes)
	return nil
}
