// Command salsalint runs the repo's custom static-analysis suite — the
// compile-time enforcement of the invariants the runtime tests
// (TestZeroAlloc*, the race hammers, the seeded harnesses) can only
// catch after a regression lands.
//
// Usage:
//
//	go run ./cmd/salsalint ./...          # whole repo (the CI gate)
//	go run ./cmd/salsalint ./internal/core
//	go run ./cmd/salsalint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 operational failure (pattern did
// not load, a package failed to type-check, ...). Findings print as
// file:line:col: analyzer: message — the format editors and CI
// annotations already understand. See the README's "Static analysis"
// section for the marker comments (//salsa:hotpath, //salsa:nolock,
// //salsa:deterministic, //salsa:typederrors) and the suppression
// directive (//salsa:ignore <analyzer> <justification>).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"salsa/internal/lint"
	"salsa/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("salsalint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "describe the analyzers and exit")
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			byName[strings.TrimSpace(name)] = true
		}
		filtered := analyzers[:0:0]
		for _, a := range analyzers {
			if byName[a.Name] {
				filtered = append(filtered, a)
				delete(byName, a.Name)
			}
		}
		for name := range byName {
			fmt.Fprintf(stderr, "salsalint: unknown analyzer %q (see -list)\n", name)
			return 2
		}
		analyzers = filtered
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "salsalint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(res, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "salsalint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "salsalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
