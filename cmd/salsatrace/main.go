// Command salsatrace generates and summarizes the synthetic traces that
// stand in for the paper's datasets (DESIGN.md §2): the four named trace
// substitutes and arbitrary Zipf streams.
//
// Usage:
//
//	salsatrace -dataset NY18 -n 1000000            # summary statistics
//	salsatrace -zipf 1.2 -n 1000000 -emit          # stream item ids
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"salsa/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "trace stand-in: NY18, CH16, Univ2, YouTube")
		zipf    = flag.Float64("zipf", 0, "Zipf skew (alternative to -dataset)")
		n       = flag.Int("n", 1_000_000, "stream length")
		seed    = flag.Uint64("seed", 1, "generator seed")
		emit    = flag.Bool("emit", false, "write item ids to stdout instead of a summary")
		topk    = flag.Int("top", 10, "number of top items in the summary")
	)
	flag.Parse()

	var data []uint64
	var name string
	switch {
	case *dataset != "":
		ds, ok := stream.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "salsatrace: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		data = ds.Generate(*n, *seed)
		name = ds.Name
	case *zipf > 0:
		u := *n / 10
		if u < 1024 {
			u = 1024
		}
		data = stream.Zipf(*n, u, *zipf, *seed)
		name = fmt.Sprintf("Zipf(%.2f)", *zipf)
	default:
		fmt.Fprintln(os.Stderr, "salsatrace: need -dataset or -zipf")
		flag.Usage()
		os.Exit(2)
	}

	if *emit {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, x := range data {
			fmt.Fprintln(w, x)
		}
		return
	}

	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	fmt.Printf("trace:     %s (seed %d)\n", name, *seed)
	fmt.Printf("volume:    %d\n", exact.Volume())
	fmt.Printf("distinct:  %d\n", exact.Distinct())
	fmt.Printf("entropy:   %.4f bits\n", exact.Entropy())
	fmt.Printf("F2:        %.4g\n", exact.Moment(2))
	fmt.Printf("top %d items:\n", *topk)
	for i, x := range exact.TopK(*topk) {
		f := exact.Count(x)
		fmt.Printf("  %2d. item %-20d count %-10d (%.3f%% of volume)\n",
			i+1, x, f, 100*float64(f)/float64(exact.Volume()))
	}
}
