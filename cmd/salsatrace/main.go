// Command salsatrace generates and summarizes the synthetic traces that
// stand in for the paper's datasets (DESIGN.md §2): the four named trace
// substitutes and arbitrary Zipf streams.
//
// Usage:
//
//	salsatrace -dataset NY18 -n 1000000            # summary statistics
//	salsatrace -zipf 1.2 -n 1000000 -emit          # stream item ids
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"salsa/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "salsatrace:", err)
		os.Exit(1)
	}
}

// run executes one salsatrace invocation, writing to stdout; main is only
// the exit-code shim so tests can drive the tool in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("salsatrace", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "trace stand-in: NY18, CH16, Univ2, YouTube")
		zipf    = fs.Float64("zipf", 0, "Zipf skew (alternative to -dataset)")
		n       = fs.Int("n", 1_000_000, "stream length")
		seed    = fs.Uint64("seed", 1, "generator seed")
		emit    = fs.Bool("emit", false, "write item ids to stdout instead of a summary")
		topk    = fs.Int("top", 10, "number of top items in the summary")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		// The FlagSet has already reported the problem on stderr.
		return errors.New("invalid arguments")
	}

	var data []uint64
	var name string
	switch {
	case *dataset != "":
		ds, ok := stream.ByName(*dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q", *dataset)
		}
		data = ds.Generate(*n, *seed)
		name = ds.Name
	case *zipf > 0:
		u := *n / 10
		if u < 1024 {
			u = 1024
		}
		data = stream.Zipf(*n, u, *zipf, *seed)
		name = fmt.Sprintf("Zipf(%.2f)", *zipf)
	default:
		fs.Usage()
		return fmt.Errorf("need -dataset or -zipf")
	}

	if *emit {
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		for _, x := range data {
			fmt.Fprintln(w, x)
		}
		return nil
	}

	exact := stream.NewExact()
	for _, x := range data {
		exact.Observe(x)
	}
	fmt.Fprintf(stdout, "trace:     %s (seed %d)\n", name, *seed)
	fmt.Fprintf(stdout, "volume:    %d\n", exact.Volume())
	fmt.Fprintf(stdout, "distinct:  %d\n", exact.Distinct())
	fmt.Fprintf(stdout, "entropy:   %.4f bits\n", exact.Entropy())
	fmt.Fprintf(stdout, "F2:        %.4g\n", exact.Moment(2))
	fmt.Fprintf(stdout, "top %d items:\n", *topk)
	for i, x := range exact.TopK(*topk) {
		f := exact.Count(x)
		fmt.Fprintf(stdout, "  %2d. item %-20d count %-10d (%.3f%% of volume)\n",
			i+1, x, f, 100*float64(f)/float64(exact.Volume()))
	}
	return nil
}
