package main

import (
	"strconv"
	"strings"
	"testing"
)

// TestRunSummary: the summary path reports the exact trace statistics.
func TestRunSummary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dataset", "NY18", "-n", "20000", "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"trace:     NY18", "volume:    20000", "distinct:", "entropy:", "top 3 items:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "% of volume)") != 3 {
		t.Fatalf("want 3 top items:\n%s", got)
	}
}

// TestRunEmit: -emit streams exactly n parseable item ids.
func TestRunEmit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-zipf", "1.1", "-n", "500", "-emit"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 500 {
		t.Fatalf("emitted %d lines, want 500", len(lines))
	}
	for _, l := range lines[:10] {
		if _, err := strconv.ParseUint(l, 10, 64); err != nil {
			t.Fatalf("non-numeric item id %q", l)
		}
	}
}

// TestRunBadArgs: missing source, unknown dataset, unknown flag.
func TestRunBadArgs(t *testing.T) {
	for name, args := range map[string][]string{
		"no source":       nil,
		"unknown dataset": {"-dataset", "nope"},
		"unknown flag":    {"-bogus"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
