// Sliding-window mode (-window): streams a Zipf trace through the windowed
// sketches and reports, per backend, the ingestion rate with rotation
// enabled, the cost of a single rotation (the closed-bucket merge rebuild),
// and the windowed-query rate — the three numbers that size a windowed
// deployment: rotation cost amortizes over the bucket interval, query cost
// over the run of queries between writes.
package main

import (
	"fmt"
	"io"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type windowConfig struct {
	n           int
	buckets     int
	bucketItems int
	seed        uint64
}

func runWindow(cfg windowConfig, out io.Writer) {
	if cfg.buckets <= 0 {
		cfg.buckets = 8
	}
	if cfg.bucketItems <= 0 {
		cfg.bucketItems = cfg.n / (8 * cfg.buckets) // ~8 full window turnovers
		if cfg.bucketItems < 1 {
			cfg.bucketItems = 1
		}
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	queries := data[:min(1<<16, len(data))]
	opt := salsa.Options{Width: 1 << 14, Seed: cfg.seed}

	fmt.Fprintln(out, "# sliding-window ingestion / rotation / query cost")
	fmt.Fprintf(out, "# n=%d, buckets=%d, bucketitems=%d, width=%d\n",
		cfg.n, cfg.buckets, cfg.bucketItems, opt.Width)
	fmt.Fprintln(out, "backend,ingest_mops,rotation_us,query_mops,rotations")

	type windowed interface {
		IncrementBatch([]uint64)
		Tick()
		Rotations() uint64
	}
	queryCMS := func(w windowed) time.Duration {
		cm := w.(*salsa.WindowedCountMin)
		buf := make([]uint64, len(queries))
		start := time.Now()
		cm.QueryBatch(queries, buf)
		return time.Since(start)
	}
	querySigned := func(w windowed) time.Duration {
		cs := w.(*salsa.WindowedCountSketch)
		buf := make([]int64, len(queries))
		start := time.Now()
		cs.QueryBatch(queries, buf)
		return time.Since(start)
	}
	backends := []struct {
		name  string
		build func() windowed
		query func(w windowed) time.Duration
	}{
		{
			"windowed-countmin",
			func() windowed { return salsa.NewWindowedCountMin(opt, cfg.buckets, cfg.bucketItems) },
			queryCMS,
		},
		{
			"windowed-conservative",
			func() windowed { return salsa.NewWindowedConservativeUpdate(opt, cfg.buckets, cfg.bucketItems) },
			queryCMS,
		},
		{
			"windowed-countsketch",
			func() windowed { return salsa.NewWindowedCountSketch(opt, cfg.buckets, cfg.bucketItems) },
			querySigned,
		},
	}

	for _, b := range backends {
		w := b.build()
		start := time.Now()
		for off := 0; off < len(data); off += 4096 {
			w.IncrementBatch(data[off:min(off+4096, len(data))])
		}
		ingest := time.Since(start)

		// Rotation cost on the filled window: explicit ticks, averaged.
		const ticks = 16
		start = time.Now()
		for i := 0; i < ticks; i++ {
			w.Tick()
		}
		perRotation := time.Since(start) / ticks

		// Re-warm the window so queries hit a realistic view, then time a
		// batch of point queries against the (cached) merged view.
		w.IncrementBatch(data[:min(4*cfg.bucketItems, len(data))])
		qElapsed := b.query(w)

		fmt.Fprintf(out, "%s,%.2f,%.1f,%.2f,%d\n",
			b.name,
			float64(len(data))/ingest.Seconds()/1e6,
			float64(perRotation.Nanoseconds())/1e3,
			float64(len(queries))/qElapsed.Seconds()/1e6,
			w.Rotations())
	}
}
