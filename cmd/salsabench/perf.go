// Single-item and batch hot-path throughput mode (-perf): times Update,
// Query and their batch counterparts for every sketch backend over a Zipf
// trace and reports items/s per (backend, path). With -json the results are
// also written as a machine-readable BENCH_*.json, the repo's perf
// trajectory: CI uploads one per run, so hot-path regressions show up as a
// number, not an anecdote. Combine with -cpuprofile/-memprofile for
// flame-graph-backed investigations.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type perfConfig struct {
	n     int
	batch int
	seed  uint64
	json  string // output path for the JSON report ("" = stdout CSV only)
	label string // report label, e.g. "pr3"
}

// perfPoint is one (backend, path) measurement.
type perfPoint struct {
	Name        string  `json:"name"` // backend/path, e.g. "countmin-salsa/update"
	NsPerOp     float64 `json:"ns_per_op"`
	ItemsPerSec float64 `json:"items_per_sec"`
}

// perfReport is the BENCH_*.json schema.
type perfReport struct {
	Schema    string      `json:"schema"` // "salsabench-perf/v1"
	Label     string      `json:"label"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPUs      int         `json:"cpus"`
	Timestamp string      `json:"timestamp"`
	N         int         `json:"n"`
	Batch     int         `json:"batch"`
	Points    []perfPoint `json:"benchmarks"`
}

// perfBackend bundles the timed paths of one sketch configuration. A nil
// path is skipped: not every backend exposes every surface (UnivMon has no
// per-item query, the promoted facades have no vectorized query-batch).
type perfBackend struct {
	name        string
	update      func(x uint64)
	updateBatch func(items []uint64)
	query       func(x uint64)
	queryBatch  func(items []uint64)
}

func perfBackends(seed uint64) []perfBackend {
	opts := func(mode salsa.Mode) salsa.Options {
		// Iso-memory-ish: baseline 32-bit rows get 1/4 the slots of 8-bit
		// SALSA rows, as in the paper's figures.
		w := 1 << 14
		if mode == salsa.ModeBaseline {
			w = 1 << 12
		}
		return salsa.Options{Width: w, Mode: mode, Seed: seed}
	}
	var out []perfBackend
	addCM := func(name string, cm *salsa.CountMin) {
		udst := []uint64(nil)
		out = append(out, perfBackend{
			name:        name,
			update:      cm.Increment,
			updateBatch: cm.IncrementBatch,
			query:       func(x uint64) { _ = cm.Query(x) },
			queryBatch:  func(items []uint64) { udst = cm.QueryBatch(items, udst) },
		})
	}
	// Everything is constructed through the composable facade: the perf
	// trajectory measures Build-produced sketches, pinning the redesigned
	// API to the same ns/op as the PR 3 constructors (same concrete
	// monomorphic types underneath).
	addCM("countmin-salsa", salsa.MustBuild(salsa.CountMinOf(opts(salsa.ModeSALSA))).(*salsa.CountMin))
	addCM("countmin-baseline", salsa.MustBuild(salsa.CountMinOf(opts(salsa.ModeBaseline))).(*salsa.CountMin))
	addCM("countmin-tango", salsa.MustBuild(salsa.CountMinOf(opts(salsa.ModeTango))).(*salsa.CountMin))
	addCM("conservative-salsa", salsa.MustBuild(salsa.ConservativeOf(opts(salsa.ModeSALSA))).(*salsa.CountMin))
	addCM("conservative-baseline", salsa.MustBuild(salsa.ConservativeOf(opts(salsa.ModeBaseline))).(*salsa.CountMin))
	addCS := func(name string, cs *salsa.CountSketch) {
		sdst := []int64(nil)
		out = append(out, perfBackend{
			name:        name,
			update:      cs.Increment,
			updateBatch: cs.IncrementBatch,
			query:       func(x uint64) { _ = cs.Query(x) },
			queryBatch:  func(items []uint64) { sdst = cs.QueryBatch(items, sdst) },
		})
	}
	addCS("countsketch-salsa", salsa.MustBuild(salsa.CountSketchOf(opts(salsa.ModeSALSA))).(*salsa.CountSketch))
	addCS("countsketch-baseline", salsa.MustBuild(salsa.CountSketchOf(opts(salsa.ModeBaseline))).(*salsa.CountSketch))

	// The sketches promoted into the Spec algebra by PR 6: their hot paths
	// join the trajectory so the promotion (and any later refactor of the
	// facades) is priced per release, not assumed free.
	um := salsa.MustBuild(salsa.UnivMonOf(opts(salsa.ModeSALSA), 12, 100)).(*salsa.UnivMon)
	out = append(out, perfBackend{
		name:        "univmon-salsa",
		update:      um.Process,
		updateBatch: func(items []uint64) { um.UpdateBatch(items, 1) },
	})
	addAEE := func(name string, a *salsa.AEE) {
		out = append(out, perfBackend{
			name:        name,
			update:      a.Process,
			updateBatch: func(items []uint64) { a.UpdateBatch(items, 1) },
			query:       func(x uint64) { _ = a.Query(x) },
		})
	}
	addAEE("aee-salsa", salsa.MustBuild(salsa.AEEOf(opts(salsa.ModeSALSA))).(*salsa.AEE))
	addAEE("aee-baseline", salsa.MustBuild(salsa.AEEOf(opts(salsa.ModeBaseline))).(*salsa.AEE))
	d := salsa.MustBuild(salsa.DistinctOf(opts(salsa.ModeSALSA))).(*salsa.Distinct)
	out = append(out, perfBackend{
		name:        "distinct-salsa",
		update:      d.Increment,
		updateBatch: func(items []uint64) { d.UpdateBatch(items, 1) },
		query:       func(x uint64) { _ = d.Query(x) },
	})
	cf := salsa.MustBuild(salsa.Filtered(salsa.ConservativeOf(opts(salsa.ModeSALSA)))).(*salsa.ColdFilter)
	out = append(out, perfBackend{
		name:        "coldfilter-cus",
		update:      cf.Process,
		updateBatch: func(items []uint64) { cf.UpdateBatch(items, 1) },
		query:       func(x uint64) { _ = cf.Query(x) },
	})
	py := salsa.MustBuild(salsa.Tiered(salsa.CountMinOf(opts(salsa.ModeSALSA)))).(*salsa.Pyramid)
	out = append(out, perfBackend{
		name:        "pyramid-cms",
		update:      py.Increment,
		updateBatch: func(items []uint64) { py.UpdateBatch(items, 1) },
		query:       func(x uint64) { _ = py.Query(x) },
	})
	return out
}

// timePerf runs fn over the trace trials times and returns the best
// wall-clock duration (the least-noise estimator on shared machines).
func timePerf(trials int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for t := 0; t < trials; t++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func runPerf(cfg perfConfig, out io.Writer) error {
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	const trials = 3

	fmt.Fprintln(out, "# single-item and batch hot-path throughput")
	fmt.Fprintf(out, "# n=%d, batch=%d, trials=%d (best), %s %s/%s cpus=%d\n",
		cfg.n, cfg.batch, trials, runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	fmt.Fprintln(out, "backend,path,ns_per_op,mops")

	report := perfReport{
		Schema:    "salsabench-perf/v1",
		Label:     cfg.label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		N:         cfg.n,
		Batch:     cfg.batch,
	}
	record := func(backend, path string, d time.Duration, ops int) {
		ns := float64(d.Nanoseconds()) / float64(ops)
		mops := float64(ops) / d.Seconds() / 1e6
		fmt.Fprintf(out, "%s,%s,%.2f,%.2f\n", backend, path, ns, mops)
		report.Points = append(report.Points, perfPoint{
			Name:        backend + "/" + path,
			NsPerOp:     ns,
			ItemsPerSec: mops * 1e6,
		})
	}

	runMergePerf(cfg, record, out)
	runRotatePerf(cfg, record, out)

	for _, b := range perfBackends(cfg.seed) {
		// Warm the sketch (and any lazy scratch) before timing.
		b.updateBatch(data[:min(cfg.batch, len(data))])
		record(b.name, "update", timePerf(trials, func() {
			for _, x := range data {
				b.update(x)
			}
		}), len(data))
		record(b.name, "update-batch", timePerf(trials, func() {
			for off := 0; off < len(data); off += cfg.batch {
				b.updateBatch(data[off:min(off+cfg.batch, len(data))])
			}
		}), len(data))
		if b.query != nil {
			record(b.name, "query", timePerf(trials, func() {
				for _, x := range data {
					b.query(x)
				}
			}), len(data))
		}
		if b.queryBatch != nil {
			record(b.name, "query-batch", timePerf(trials, func() {
				for off := 0; off < len(data); off += cfg.batch {
					b.queryBatch(data[off:min(off+cfg.batch, len(data))])
				}
			}), len(data))
		}
	}

	return writePerfReport(cfg, report, out)
}

// runMergePerf times the steady-state sketch-union path (the backbone of
// window rotation and sharded snapshots) with a stable subtract-then-merge
// cycle: dst starts as a byte-clone of src, each op removes src and folds
// it back, so every iteration performs one same-layout subtraction and one
// same-layout merge of loaded rows with no drift toward saturation. ns/op
// is per merge (two per cycle).
func runMergePerf(cfg perfConfig, record func(backend, path string, d time.Duration, ops int), out io.Writer) {
	load := stream.Zipf(1<<17, 1<<14, 1.0, cfg.seed|1)
	const cycles = 64
	for _, mc := range []struct {
		name string
		spec salsa.Spec
	}{
		{"countmin-salsa", salsa.CountMinOf(salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: cfg.seed})},
		{"countmin-baseline", salsa.CountMinOf(salsa.Options{Width: 1 << 12, Mode: salsa.ModeBaseline, Merge: salsa.MergeSum, Seed: cfg.seed})},
		{"countsketch-salsa", salsa.CountSketchOf(salsa.Options{Width: 1 << 14, Seed: cfg.seed})},
	} {
		src := salsa.MustBuild(mc.spec)
		src.UpdateBatch(load, 1)
		blob, err := salsa.Marshal(src)
		if err != nil {
			fmt.Fprintf(out, "# %s/merge skipped: %v\n", mc.name, err)
			continue
		}
		dst, err := salsa.Unmarshal(blob)
		if err != nil {
			fmt.Fprintf(out, "# %s/merge skipped: %v\n", mc.name, err)
			continue
		}
		var cycle func()
		switch d := dst.(type) {
		case *salsa.CountMin:
			s := src.(*salsa.CountMin)
			cycle = func() { d.Subtract(s); d.Merge(s) }
		case *salsa.CountSketch:
			s := src.(*salsa.CountSketch)
			cycle = func() { d.Subtract(s); d.Merge(s) }
		default:
			fmt.Fprintf(out, "# %s/merge skipped: no cycle for %T\n", mc.name, dst)
			continue
		}
		cycle() // warm
		record(mc.name, "merge", timePerf(3, func() {
			for i := 0; i < cycles; i++ {
				cycle()
			}
		}), 2*cycles)
	}
}

// runRotatePerf times amortized window-rotation cost at width 2^12 for a
// small and a large ring: each op ingests one fixed bucket interval and
// ticks, and the rotation count spans many flip cycles so the two-stack
// flip cost amortizes fairly. Flat ns/op across B is the design claim.
func runRotatePerf(cfg perfConfig, record func(backend, path string, d time.Duration, ops int), out io.Writer) {
	const fill = 512
	load := stream.Zipf(1<<16, 1<<13, 1.0, cfg.seed|1)
	for _, buckets := range []int{4, 64} {
		w, err := salsa.Build(salsa.Windowed(salsa.CountMinOf(salsa.Options{Width: 1 << 12, Seed: cfg.seed}), buckets, 0))
		if err != nil {
			fmt.Fprintf(out, "# window-rotate-b%d skipped: %v\n", buckets, err)
			continue
		}
		wc := w.(*salsa.WindowedCountMin)
		rotations := 16 * buckets
		tickFill := func(n int) {
			for i := 0; i < n; i++ {
				off := (i * fill) % (len(load) - fill)
				wc.UpdateBatch(load[off:off+fill], 1)
				wc.Tick()
			}
		}
		tickFill(buckets + 1) // warm every bucket and the rotation stacks
		record(fmt.Sprintf("window-rotate-b%d", buckets), "tick", timePerf(3, func() {
			tickFill(rotations)
		}), rotations)
	}
}

func writePerfReport(cfg perfConfig, report perfReport, out io.Writer) error {
	if cfg.json != "" {
		payload, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		payload = append(payload, '\n')
		if err := os.WriteFile(cfg.json, payload, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "# wrote %s\n", cfg.json)
	}
	return nil
}
