// Composed-topology mode (-topology): builds an arbitrary sketch topology
// from a spec expression — e.g. "sharded(8,windowed(4,65536,cms))" — via
// salsa.ParseSpec + salsa.Build, streams a Zipf trace through it, and
// reports ingestion rate, rotation cost (when the topology windows), and
// point-query rate. This replaces the old ad-hoc -window/-shards flag
// plumbing: every deployment shape the spec algebra can express is
// benchmarkable with one flag, through the same public API applications
// use.
package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type topologyConfig struct {
	expr  string
	n     int
	procs int
	batch int
	seed  uint64
}

// queryFunc returns the point-query surface of any built topology.
func queryFunc(s salsa.Sketch) (func(uint64), error) {
	switch x := s.(type) {
	case *salsa.CountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.CountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.Monitor:
		return func(i uint64) { _ = x.Sketch().Query(i) }, nil
	case *salsa.TopK:
		return func(i uint64) { _ = x.Sketch().Query(i) }, nil
	case *salsa.WindowedCountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.WindowedCountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.WindowedMonitor:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedCountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedCountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedMonitor:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedWindowedCountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedWindowedCountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedWindowedMonitor:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.UnivMon:
		// No per-item query; the closest point-query analogue is the
		// top-level heavy-hitter scan, amortized here per probe.
		return func(i uint64) { _ = x.Volume() }, nil
	case *salsa.AEE:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedAEE:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.Distinct:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.WindowedDistinct:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedDistinct:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ColdFilter:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedColdFilter:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.Pyramid:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.ShardedPyramid:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochCountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochCountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochMonitor:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochDistinct:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochWindowedCountMin:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochWindowedCountSketch:
		return func(i uint64) { _ = x.Query(i) }, nil
	case *salsa.EpochWindowedDistinct:
		return func(i uint64) { _ = x.Query(i) }, nil
	}
	return nil, fmt.Errorf("no query surface for %T", s)
}

// isSharded reports whether the built topology tolerates concurrent
// ingestion (decided by the concrete type Build returned, not by the
// spec rendering). Epoch types qualify through their direct compatibility
// path — serialized through the view lock, safe from any goroutine; use
// -sweep for the lock-free writer path.
func isSharded(s salsa.Sketch) bool {
	switch s.(type) {
	case *salsa.ShardedCountMin, *salsa.ShardedCountSketch, *salsa.ShardedMonitor,
		*salsa.ShardedWindowedCountMin, *salsa.ShardedWindowedCountSketch,
		*salsa.EpochCountMin, *salsa.EpochCountSketch, *salsa.EpochMonitor,
		*salsa.EpochDistinct, *salsa.EpochWindowedCountMin,
		*salsa.EpochWindowedCountSketch, *salsa.EpochWindowedDistinct:
		return true
	}
	return false
}

func runTopology(cfg topologyConfig, out io.Writer) error {
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	if cfg.procs <= 0 {
		cfg.procs = 1
	}
	opt := salsa.Options{Width: 1 << 14, Seed: cfg.seed}
	spec, err := salsa.ParseSpec(cfg.expr, opt)
	if err != nil {
		return err
	}
	s, err := salsa.Build(spec)
	if err != nil {
		return err
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	queries := data[:min(1<<16, len(data))]

	// Only sharded topologies are safe for concurrent ingestion; others
	// stream from one goroutine regardless of -procs.
	procs := cfg.procs
	if !isSharded(s) {
		procs = 1
	}

	fmt.Fprintln(out, "# composed-topology benchmark (spec algebra end to end)")
	fmt.Fprintf(out, "# topology=%s, n=%d, procs=%d, batch=%d, width=%d\n",
		spec, cfg.n, procs, cfg.batch, opt.Width)
	fmt.Fprintln(out, "metric,value")

	start := time.Now()
	if procs > 1 {
		chunk := (len(data) + procs - 1) / procs
		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			lo := g * chunk
			hi := min(lo+chunk, len(data))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []uint64) {
				defer wg.Done()
				for off := 0; off < len(part); off += cfg.batch {
					s.UpdateBatch(part[off:min(off+cfg.batch, len(part))], 1)
				}
			}(data[lo:hi])
		}
		wg.Wait()
	} else {
		for off := 0; off < len(data); off += cfg.batch {
			s.UpdateBatch(data[off:min(off+cfg.batch, len(data))], 1)
		}
	}
	ingest := time.Since(start)
	fmt.Fprintf(out, "ingest_mops,%.2f\n", float64(len(data))/ingest.Seconds()/1e6)

	if tk, ok := s.(interface{ Tick() }); ok {
		const ticks = 16
		start = time.Now()
		for i := 0; i < ticks; i++ {
			tk.Tick()
		}
		fmt.Fprintf(out, "rotation_us,%.1f\n",
			float64(time.Since(start).Nanoseconds())/ticks/1e3)
		// Re-warm so queries hit a realistic, partially-filled window.
		s.UpdateBatch(data[:min(cfg.n/4, len(data))], 1)
	}

	q, err := queryFunc(s)
	if err != nil {
		return err
	}
	start = time.Now()
	for _, x := range queries {
		q(x)
	}
	qElapsed := time.Since(start)
	fmt.Fprintf(out, "query_mops,%.2f\n", float64(len(queries))/qElapsed.Seconds()/1e6)
	fmt.Fprintf(out, "memory_kib,%d\n", s.MemoryBits()/8/1024)

	// The envelope is part of the operational story (distributed merges):
	// report the serialized size and prove the round trip on the spot.
	blob, err := salsa.Marshal(s)
	if err != nil {
		return err
	}
	if _, err := salsa.Unmarshal(blob); err != nil {
		return fmt.Errorf("round trip failed: %w", err)
	}
	fmt.Fprintf(out, "envelope_kib,%d\n", len(blob)/1024)
	return nil
}
