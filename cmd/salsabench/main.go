// Command salsabench regenerates the paper's evaluation figures
// (DESIGN.md §3 maps ids to figures). Each run prints one CSV block per
// experiment: series, x, y-mean, and the 95% Student-t half-width over the
// trials.
//
// Usage:
//
//	salsabench -experiment fig8cd                # one figure
//	salsabench -all -n 1000000 -trials 5         # everything, paper-style
//	salsabench -list                             # what exists
//	salsabench -throughput -procs 8 -batch 4096  # multi-core ingestion rate
//
// The paper runs 98M-update traces; -n scales the streams (and the harness
// scales sketch widths to match the paper's operating points). Shapes are
// the reproduction target, not absolute values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"salsa/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		n          = flag.Int("n", 400_000, "stream length (paper: 98M)")
		trials     = flag.Int("trials", 3, "trials per data point (paper: 10)")
		seed       = flag.Uint64("seed", 42, "master seed")
		throughput = flag.Bool("throughput", false, "measure multi-core ingestion throughput of the Sharded layer")
		procs      = flag.Int("procs", 0, "ingesting goroutines for -throughput (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "shard count for -throughput (0 = procs)")
		batch      = flag.Int("batch", 4096, "batch / Writer buffer size for -throughput")
	)
	flag.Parse()

	if *throughput {
		runThroughput(throughputConfig{n: *n, procs: *procs, shards: *shards, batch: *batch, seed: *seed})
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-9s %s\n", id, experiments.Title(id))
		}
		return
	}

	cfg := experiments.Config{N: *n, Trials: *trials, Seed: *seed}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "salsabench: need -experiment <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "salsabench:", err)
			os.Exit(1)
		}
		fmt.Printf("# %s: %s\n", res.ID, res.Title)
		fmt.Printf("# x=%s, y=%s, n=%d, trials=%d, elapsed=%s\n",
			res.XLabel, res.YLabel, cfg.N, cfg.Trials, time.Since(start).Round(time.Millisecond))
		fmt.Println("series,x,y,ci95")
		for _, p := range res.Points {
			fmt.Printf("%s,%g,%g,%g\n", p.Series, p.X, p.Y, p.CI)
		}
		fmt.Println()
	}
}
