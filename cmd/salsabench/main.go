// Command salsabench regenerates the paper's evaluation figures
// (DESIGN.md §3 maps ids to figures) and measures the operational layers.
// Each figure run prints one CSV block per experiment: series, x, y-mean,
// and the 95% Student-t half-width over the trials.
//
// Usage:
//
//	salsabench -experiment fig8cd                # one figure
//	salsabench -all -n 1000000 -trials 5         # everything, paper-style
//	salsabench -list                             # what exists
//	salsabench -throughput -procs 8 -batch 4096  # multi-core ingestion rate
//	salsabench -sweep -json BENCH_pr7.json       # epoch vs sharded vs mutex curves
//	salsabench -topology 'windowed(8,65536,cms)' # any composed topology,
//	salsabench -topology 'sharded(8,windowed(4,65536,cms))' -procs 8
//	salsabench -perf -json BENCH_pr4.json        # hot-path items/s + JSON report
//	salsabench -perf -cpuprofile cpu.pprof       # profile any mode
//
// The -topology flag accepts any spec expression of the salsa package's
// composable topology algebra (see salsa.ParseSpec) and benchmarks it
// end to end through salsa.Build, including its universal-envelope
// serialization size.
//
// The paper runs 98M-update traces; -n scales the streams (and the harness
// scales sketch widths to match the paper's operating points). Shapes are
// the reproduction target, not absolute values.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"salsa/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "salsabench:", err)
		os.Exit(1)
	}
}

// run executes one salsabench invocation, writing results to out; main is
// only the exit-code shim so tests can drive the tool in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("salsabench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment id to run (see -list)")
		all        = fs.Bool("all", false, "run every experiment")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		n          = fs.Int("n", 400_000, "stream length (paper: 98M)")
		trials     = fs.Int("trials", 3, "trials per data point (paper: 10)")
		seed       = fs.Uint64("seed", 42, "master seed")
		throughput = fs.Bool("throughput", false, "measure multi-core ingestion throughput of the concurrency layers")
		sweep      = fs.Bool("sweep", false, "concurrency-layer curves (epoch vs sharded vs mutex) across a GOMAXPROCS ladder")
		procs      = fs.Int("procs", 0, "ingesting goroutines for -throughput/-topology (0 = GOMAXPROCS)")
		batch      = fs.Int("batch", 4096, "batch / Writer buffer size for -throughput/-topology")
		topology   = fs.String("topology", "", "benchmark a composed topology spec, e.g. 'sharded(8,windowed(4,65536,cms))'")
		perf       = fs.Bool("perf", false, "measure single-item and batch hot-path throughput per backend")
		jsonOut    = fs.String("json", "", "with -perf: also write the results as a BENCH_*.json report to this path")
		label      = fs.String("label", "", "label recorded in the -json report (e.g. pr3)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile = fs.String("memprofile", "", "write a heap profile at exit to this path")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		// The FlagSet has already reported the problem on stderr.
		return errors.New("invalid arguments")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "salsabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle steady-state live objects before the snapshot
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "salsabench: memprofile:", err)
			}
		}()
	}

	switch {
	case *perf:
		return runPerf(perfConfig{n: *n, batch: *batch, seed: *seed, json: *jsonOut, label: *label}, out)
	case *sweep:
		return runThroughputSweep(throughputConfig{n: *n, batch: *batch, seed: *seed}, *label, *jsonOut, out)
	case *throughput:
		runThroughput(throughputConfig{n: *n, procs: *procs, batch: *batch, seed: *seed}, out)
		return nil
	case *topology != "":
		return runTopology(topologyConfig{expr: *topology, n: *n, procs: *procs, batch: *batch, seed: *seed}, out)
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Fprintf(out, "%-9s %s\n", id, experiments.Title(id))
		}
		return nil
	}

	cfg := experiments.Config{N: *n, Trials: *trials, Seed: *seed}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fs.Usage()
		return fmt.Errorf("need -experiment <id>, -all, -list, -throughput, -sweep, -topology <spec>, or -perf")
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# %s: %s\n", res.ID, res.Title)
		fmt.Fprintf(out, "# x=%s, y=%s, n=%d, trials=%d, elapsed=%s\n",
			res.XLabel, res.YLabel, cfg.N, cfg.Trials, time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(out, "series,x,y,ci95")
		for _, p := range res.Points {
			fmt.Fprintf(out, "%s,%g,%g,%g\n", p.Series, p.X, p.Y, p.CI)
		}
		fmt.Fprintln(out)
	}
	return nil
}
