package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunList: -list prints every experiment id with a title.
func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig4a", "fig8cd"} {
		if !strings.Contains(got, id) {
			t.Fatalf("-list output missing %q:\n%s", id, got)
		}
	}
}

// TestRunExperiment: a tiny single-figure run emits the CSV block shape.
func TestRunExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "fig4a", "-n", "20000", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "series,x,y,ci95") {
		t.Fatalf("missing CSV header:\n%s", got)
	}
	if strings.Count(got, ",") < 8 {
		t.Fatalf("suspiciously few data points:\n%s", got)
	}
}

// TestRunTopology: -topology builds the spec through the public algebra
// and reports ingest/query rates; windowed topologies add rotation cost,
// and every run proves the universal-envelope round trip.
func TestRunTopology(t *testing.T) {
	for _, expr := range []string{
		"cms",
		"windowed(3,2500,cus)",
		"sharded(2,windowed(3,2500,cms))",
		"monitor(8)",
		// Every promoted kind and decorator must have a query surface
		// here — ParseSpec accepting a spec that -topology then refuses
		// to benchmark is a regression.
		"aee",
		"distinct",
		"univmon(6,20)",
		"filtered(cus)",
		"tiered(cms)",
		"windowed(3,2500,distinct)",
		"sharded(2,filtered(cms))",
		"sharded(2,tiered(cms))",
	} {
		var out strings.Builder
		if err := run([]string{"-topology", expr, "-n", "30000"}, &out); err != nil {
			t.Fatalf("-topology %s: %v", expr, err)
		}
		got := out.String()
		for _, metric := range []string{"metric,value", "ingest_mops,", "query_mops,", "memory_kib,", "envelope_kib,"} {
			if !strings.Contains(got, metric) {
				t.Fatalf("-topology %s missing %q:\n%s", expr, metric, got)
			}
		}
		if strings.Contains(expr, "windowed") && !strings.Contains(got, "rotation_us,") {
			t.Fatalf("-topology %s missing rotation cost:\n%s", expr, got)
		}
	}
}

// TestRunTopologyErrors: malformed specs and invalid compositions are
// reported as errors, not panics.
func TestRunTopologyErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topology", "bogus(3)"}, &out); err == nil {
		t.Fatal("bogus spec: want error")
	}
	if err := run([]string{"-topology", "sharded(2,sharded(2,cms))"}, &out); err == nil {
		t.Fatal("invalid composition: want error")
	}
}

// TestRunThroughput: the multi-core mode reports one row per backend/path.
func TestRunThroughput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-throughput", "-n", "20000", "-procs", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "backend,path,mops") || !strings.Contains(got, "countmin,writer,") {
		t.Fatalf("unexpected throughput output:\n%s", got)
	}
}

// TestRunPerf: -perf reports every backend/path pair and, with -json,
// writes a well-formed BENCH report whose items/s are positive.
func TestRunPerf(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	var out strings.Builder
	if err := run([]string{"-perf", "-n", "20000", "-label", "test", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "backend,path,ns_per_op,mops") {
		t.Fatalf("missing perf CSV header:\n%s", got)
	}
	for _, backend := range []string{"countmin-salsa", "countmin-tango", "conservative-salsa", "countsketch-salsa"} {
		for _, path := range []string{"update", "update-batch", "query", "query-batch"} {
			if !strings.Contains(got, backend+","+path+",") {
				t.Fatalf("missing %s/%s row:\n%s", backend, path, got)
			}
		}
	}
	payload, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report perfReport
	if err := json.Unmarshal(payload, &report); err != nil {
		t.Fatalf("BENCH json does not parse: %v", err)
	}
	if report.Schema != "salsabench-perf/v1" || report.Label != "test" || len(report.Points) == 0 {
		t.Fatalf("unexpected report header: %+v", report)
	}
	for _, p := range report.Points {
		if p.ItemsPerSec <= 0 || p.NsPerOp <= 0 {
			t.Fatalf("non-positive measurement: %+v", p)
		}
	}
}

// TestRunProfiles: the pprof flags produce non-empty profile files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	if err := run([]string{"-perf", "-n", "5000", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty profile %s", p)
		}
	}
}

// TestRunErrors: bad invocations return errors instead of exiting.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no arguments: want usage error")
	}
	if err := run([]string{"-experiment", "nope", "-n", "1000"}, &out); err == nil {
		t.Fatal("unknown experiment: want error")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag: want error")
	}
}
