package main

import (
	"strings"
	"testing"
)

// TestRunList: -list prints every experiment id with a title.
func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig4a", "fig8cd"} {
		if !strings.Contains(got, id) {
			t.Fatalf("-list output missing %q:\n%s", id, got)
		}
	}
}

// TestRunExperiment: a tiny single-figure run emits the CSV block shape.
func TestRunExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "fig4a", "-n", "20000", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "series,x,y,ci95") {
		t.Fatalf("missing CSV header:\n%s", got)
	}
	if strings.Count(got, ",") < 8 {
		t.Fatalf("suspiciously few data points:\n%s", got)
	}
}

// TestRunWindow: -window reports rotation cost and windowed-query
// throughput for every windowed backend.
func TestRunWindow(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-window", "-n", "30000", "-buckets", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "backend,ingest_mops,rotation_us,query_mops,rotations") {
		t.Fatalf("missing window CSV header:\n%s", got)
	}
	for _, backend := range []string{"windowed-countmin", "windowed-conservative", "windowed-countsketch"} {
		if !strings.Contains(got, backend+",") {
			t.Fatalf("missing backend %s:\n%s", backend, got)
		}
	}
}

// TestRunThroughput: the multi-core mode reports one row per backend/path.
func TestRunThroughput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-throughput", "-n", "20000", "-procs", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "backend,path,mops") || !strings.Contains(got, "countmin,writer,") {
		t.Fatalf("unexpected throughput output:\n%s", got)
	}
}

// TestRunErrors: bad invocations return errors instead of exiting.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no arguments: want usage error")
	}
	if err := run([]string{"-experiment", "nope", "-n", "1000"}, &out); err == nil {
		t.Fatal("unknown experiment: want error")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag: want error")
	}
}
