// Multi-core ingestion throughput mode (-throughput): streams a Zipf trace
// into the Sharded concurrency layer from -procs goroutines and reports
// million-updates-per-second for every backend and ingestion path — per-item
// locking, whole batches (-batch items at a time), and per-goroutine Writer
// buffers. This is the operational counterpart of the BenchmarkSharded*
// microbenchmarks: one number per (backend, path) on this machine's cores.
package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type throughputConfig struct {
	n      int
	procs  int
	shards int
	batch  int
	seed   uint64
}

var ingestPaths = []string{"item", "batch", "writer"}

func runThroughput(cfg throughputConfig, out io.Writer) {
	if cfg.procs <= 0 {
		cfg.procs = runtime.GOMAXPROCS(0)
	} else {
		runtime.GOMAXPROCS(cfg.procs)
	}
	if cfg.shards <= 0 {
		cfg.shards = cfg.procs
	}
	// NewSharded rounds the shard count up to a power of two; mirror that
	// here so the header reports the real configuration.
	for n := 1; ; n *= 2 {
		if n >= cfg.shards {
			cfg.shards = n
			break
		}
	}
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	opt := salsa.Options{Width: 1 << 14, Seed: cfg.seed}

	backends := []struct {
		name string
		run  func(path string) time.Duration
	}{
		{"countmin", func(path string) time.Duration {
			return ingest(salsa.NewShardedCountMin(opt, cfg.shards).Sharded, path, cfg, data)
		}},
		{"countmin-baseline", func(path string) time.Duration {
			o := opt
			o.Mode = salsa.ModeBaseline
			return ingest(salsa.NewShardedCountMin(o, cfg.shards).Sharded, path, cfg, data)
		}},
		{"conservative", func(path string) time.Duration {
			return ingest(salsa.NewShardedConservativeUpdate(opt, cfg.shards).Sharded, path, cfg, data)
		}},
		{"countsketch", func(path string) time.Duration {
			return ingest(salsa.NewShardedCountSketch(opt, cfg.shards).Sharded, path, cfg, data)
		}},
	}

	fmt.Fprintln(out, "# concurrent ingestion throughput (Sharded layer)")
	fmt.Fprintf(out, "# n=%d, procs=%d, shards=%d, batch=%d, width=%d\n",
		cfg.n, cfg.procs, cfg.shards, cfg.batch, opt.Width)
	fmt.Fprintln(out, "backend,path,mops")
	for _, b := range backends {
		for _, path := range ingestPaths {
			elapsed := b.run(path)
			mops := float64(cfg.n) / elapsed.Seconds() / 1e6
			fmt.Fprintf(out, "%s,%s,%.2f\n", b.name, path, mops)
		}
	}
}

// ingest streams data into s from cfg.procs goroutines over the chosen path
// and returns the wall-clock time for the whole stream.
func ingest[S salsa.Sketch](s *salsa.Sharded[S], path string, cfg throughputConfig, data []uint64) time.Duration {
	procs := cfg.procs
	chunk := (len(data) + procs - 1) / procs
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		lo := g * chunk
		hi := min(lo+chunk, len(data))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			switch path {
			case "item":
				for _, x := range part {
					s.Increment(x)
				}
			case "batch":
				for off := 0; off < len(part); off += cfg.batch {
					s.IncrementBatch(part[off:min(off+cfg.batch, len(part))])
				}
			case "writer":
				w := s.NewWriter(cfg.batch)
				for _, x := range part {
					w.Increment(x)
				}
				w.Flush()
			}
		}(data[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}
