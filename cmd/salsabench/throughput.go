// Multi-core ingestion throughput mode (-throughput): streams a Zipf trace
// into the Sharded concurrency layer from -procs goroutines and reports
// million-updates-per-second for every backend and ingestion path — per-item
// locking, whole batches (-batch items at a time), and per-goroutine Writer
// buffers. Backends are declared as spec expressions ("sharded(N,cms)") and
// built through salsa.Build, so this mode exercises the public composable
// API end to end; the shard count follows -procs (one shard per ingesting
// goroutine, rounded up to a power of two).
package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type throughputConfig struct {
	n     int
	procs int
	batch int
	seed  uint64
}

var ingestPaths = []string{"item", "batch", "writer"}

func runThroughput(cfg throughputConfig, out io.Writer) {
	if cfg.procs <= 0 {
		cfg.procs = runtime.GOMAXPROCS(0)
	} else {
		runtime.GOMAXPROCS(cfg.procs)
	}
	// One shard per ingesting goroutine; ShardedBy rounds up to a power of
	// two, mirrored here so the header reports the real configuration.
	shards := 1
	for shards < cfg.procs {
		shards *= 2
	}
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	opt := salsa.Options{Width: 1 << 14, Seed: cfg.seed}

	backends := []struct {
		name string
		opt  salsa.Options
		expr string
	}{
		{"countmin", opt, fmt.Sprintf("sharded(%d,cms)", shards)},
		{"countmin-baseline", salsa.Options{Width: 1 << 14, Mode: salsa.ModeBaseline, Seed: cfg.seed}, fmt.Sprintf("sharded(%d,cms)", shards)},
		{"conservative", opt, fmt.Sprintf("sharded(%d,cus)", shards)},
		{"countsketch", opt, fmt.Sprintf("sharded(%d,cs)", shards)},
	}

	fmt.Fprintln(out, "# concurrent ingestion throughput (Sharded layer)")
	fmt.Fprintf(out, "# n=%d, procs=%d, shards=%d, batch=%d, width=%d\n",
		cfg.n, cfg.procs, shards, cfg.batch, opt.Width)
	fmt.Fprintln(out, "backend,path,mops")
	for _, b := range backends {
		for _, path := range ingestPaths {
			spec, err := salsa.ParseSpec(b.expr, b.opt)
			if err != nil {
				panic(err) // static exprs above; cannot fail
			}
			elapsed := ingestTopology(salsa.MustBuild(spec), path, cfg, data)
			mops := float64(cfg.n) / elapsed.Seconds() / 1e6
			fmt.Fprintf(out, "%s,%s,%.2f\n", b.name, path, mops)
		}
	}
}

// ingestTopology unwraps the typed sharded wrapper Build returned and
// streams data through the chosen path.
func ingestTopology(s salsa.Sketch, path string, cfg throughputConfig, data []uint64) time.Duration {
	switch x := s.(type) {
	case *salsa.ShardedCountMin:
		return ingest(x.Sharded, path, cfg, data)
	case *salsa.ShardedCountSketch:
		return ingest(x.Sharded, path, cfg, data)
	case *salsa.ShardedMonitor:
		return ingest(x.Sharded, path, cfg, data)
	}
	panic(fmt.Sprintf("throughput: unshardable topology %T", s))
}

// ingest streams data into s from cfg.procs goroutines over the chosen path
// and returns the wall-clock time for the whole stream.
func ingest[S salsa.Sketch](s *salsa.Sharded[S], path string, cfg throughputConfig, data []uint64) time.Duration {
	procs := cfg.procs
	chunk := (len(data) + procs - 1) / procs
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		lo := g * chunk
		hi := min(lo+chunk, len(data))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			switch path {
			case "item":
				for _, x := range part {
					s.Increment(x)
				}
			case "batch":
				for off := 0; off < len(part); off += cfg.batch {
					s.IncrementBatch(part[off:min(off+cfg.batch, len(part))])
				}
			case "writer":
				w := s.NewWriter(cfg.batch)
				for _, x := range part {
					w.Increment(x)
				}
				w.Flush()
			}
		}(data[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}
