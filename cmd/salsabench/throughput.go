// Multi-core ingestion throughput mode (-throughput): streams a Zipf trace
// into the concurrency layers from -procs goroutines and reports
// million-updates-per-second for every backend and ingestion path — per-item
// locking, whole batches (-batch items at a time), and per-goroutine Writer
// buffers. Backends are declared as spec expressions ("sharded(N,cms)",
// "epoch(N,cms)") and built through salsa.Build, so this mode exercises the
// public composable API end to end; the shard/writer count follows -procs
// (rounded up to a power of two for sharding).
//
// The -sweep mode runs the concurrency-layer comparison the epoch design
// answers to: lock-free epoch ingestion vs hash-routed Sharded vs a single
// mutex, across a GOMAXPROCS ladder, plus a single-core parity section
// pinning the epoch compatibility path (direct Update/Query through the
// view lock) against the plain sketch. With -json the curves land in a
// BENCH_*.json with the -perf schema.
package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"salsa"
	"salsa/internal/stream"
)

type throughputConfig struct {
	n     int
	procs int
	batch int
	seed  uint64
}

var ingestPaths = []string{"item", "batch", "writer"}

func runThroughput(cfg throughputConfig, out io.Writer) {
	if cfg.procs <= 0 {
		cfg.procs = runtime.GOMAXPROCS(0)
	} else {
		runtime.GOMAXPROCS(cfg.procs)
	}
	// One shard per ingesting goroutine; ShardedBy rounds up to a power of
	// two, mirrored here so the header reports the real configuration.
	shards := 1
	for shards < cfg.procs {
		shards *= 2
	}
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	opt := salsa.Options{Width: 1 << 14, Seed: cfg.seed}

	backends := []struct {
		name string
		opt  salsa.Options
		expr string
	}{
		{"countmin", opt, fmt.Sprintf("sharded(%d,cms)", shards)},
		{"countmin-baseline", salsa.Options{Width: 1 << 14, Mode: salsa.ModeBaseline, Seed: cfg.seed}, fmt.Sprintf("sharded(%d,cms)", shards)},
		{"conservative", opt, fmt.Sprintf("sharded(%d,cus)", shards)},
		{"countsketch", opt, fmt.Sprintf("sharded(%d,cs)", shards)},
		{"countmin-mutex", opt, "sharded(1,cms)"},
		{"countmin-epoch", salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: cfg.seed}, fmt.Sprintf("epoch(%d,cms)", cfg.procs)},
	}

	fmt.Fprintln(out, "# concurrent ingestion throughput (concurrency layers)")
	fmt.Fprintf(out, "# n=%d, procs=%d, shards=%d, batch=%d, width=%d\n",
		cfg.n, cfg.procs, shards, cfg.batch, opt.Width)
	fmt.Fprintln(out, "backend,path,mops")
	for _, b := range backends {
		for _, path := range ingestPaths {
			spec, err := salsa.ParseSpec(b.expr, b.opt)
			if err != nil {
				panic(err) // static exprs above; cannot fail
			}
			elapsed := ingestTopology(salsa.MustBuild(spec), path, cfg, data)
			mops := float64(cfg.n) / elapsed.Seconds() / 1e6
			fmt.Fprintf(out, "%s,%s,%.2f\n", b.name, path, mops)
		}
	}
}

// ingestTopology unwraps the typed concurrency wrapper Build returned and
// streams data through the chosen path.
func ingestTopology(s salsa.Sketch, path string, cfg throughputConfig, data []uint64) time.Duration {
	switch x := s.(type) {
	case *salsa.ShardedCountMin:
		return ingest(x.Sharded, path, cfg, data)
	case *salsa.ShardedCountSketch:
		return ingest(x.Sharded, path, cfg, data)
	case *salsa.ShardedMonitor:
		return ingest(x.Sharded, path, cfg, data)
	case *salsa.EpochCountMin:
		return ingestEpoch(x, path, cfg, data)
	}
	panic(fmt.Sprintf("throughput: unshardable topology %T", s))
}

// ingestEpoch streams data through per-goroutine EpochWriter handles with
// a live background merger — the honest lock-free measurement: the clock
// covers ingestion, writer teardown, and the final drain that makes every
// item visible to queries.
func ingestEpoch(e *salsa.EpochCountMin, path string, cfg throughputConfig, data []uint64) time.Duration {
	stop := e.AutoAdvance(time.Millisecond)
	defer stop()
	procs := cfg.procs
	chunk := (len(data) + procs - 1) / procs
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		lo := g * chunk
		hi := min(lo+chunk, len(data))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			w := e.NewWriter(cfg.batch)
			switch path {
			case "batch":
				for off := 0; off < len(part); off += cfg.batch {
					w.UpdateBatch(part[off:min(off+cfg.batch, len(part))], 1)
				}
			default: // "item" and "writer" are the same lock-free path
				for _, x := range part {
					w.Increment(x)
				}
			}
			w.Close()
		}(data[lo:hi])
	}
	wg.Wait()
	e.Advance() // fold the tail: queries now see the whole stream
	return time.Since(start)
}

// ingest streams data into s from cfg.procs goroutines over the chosen path
// and returns the wall-clock time for the whole stream.
func ingest[S salsa.Sketch](s *salsa.Sharded[S], path string, cfg throughputConfig, data []uint64) time.Duration {
	procs := cfg.procs
	chunk := (len(data) + procs - 1) / procs
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		lo := g * chunk
		hi := min(lo+chunk, len(data))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			switch path {
			case "item":
				for _, x := range part {
					s.Increment(x)
				}
			case "batch":
				for off := 0; off < len(part); off += cfg.batch {
					s.IncrementBatch(part[off:min(off+cfg.batch, len(part))])
				}
			case "writer":
				w := s.NewWriter(cfg.batch)
				for _, x := range part {
					w.Increment(x)
				}
				w.Flush()
			}
		}(data[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// sweepLadder is the GOMAXPROCS ladder of -sweep; on machines with fewer
// cores the upper rungs timeshare, which is the honest picture of
// oversubscription.
var sweepLadder = []int{1, 2, 4, 8, 16}

// runThroughputSweep produces the concurrency-layer curves the epoch
// design answers to: epoch (lock-free private sketches, background
// merger) vs sharded (hash-routed per-shard mutexes) vs mutex (a single
// lock), on batch and writer ingestion paths across the GOMAXPROCS
// ladder, plus a single-core parity section pinning the epoch
// compatibility path to the plain sketch. Results go to out as CSV and,
// with -json, into a BENCH_*.json report (schema salsabench-perf/v1,
// point names "ingest/<layer>/<path>/p<procs>" and "parity/...").
func runThroughputSweep(cfg throughputConfig, label, jsonPath string, out io.Writer) error {
	if cfg.batch <= 0 {
		cfg.batch = 4096
	}
	data := stream.Zipf(cfg.n, cfg.n/16, 1.0, cfg.seed)
	// Best-of-5: oversubscribed rungs of the ladder timeshare on small
	// boxes, and scheduler placement dominates run-to-run variance there.
	const trials = 5

	fmt.Fprintln(out, "# concurrency-layer throughput sweep")
	fmt.Fprintf(out, "# n=%d, batch=%d, trials=%d (best), %s %s/%s cpus=%d\n",
		cfg.n, cfg.batch, trials, runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	fmt.Fprintln(out, "layer,path,procs,mops")

	report := perfReport{
		Schema:    "salsabench-perf/v1",
		Label:     label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		N:         cfg.n,
		Batch:     cfg.batch,
	}
	record := func(name string, d time.Duration, ops int) {
		ns := float64(d.Nanoseconds()) / float64(ops)
		report.Points = append(report.Points, perfPoint{
			Name:        name,
			NsPerOp:     ns,
			ItemsPerSec: float64(ops) / d.Seconds(),
		})
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range sweepLadder {
		runtime.GOMAXPROCS(procs)
		pc := cfg
		pc.procs = procs
		shards := 1
		for shards < procs {
			shards *= 2
		}
		layers := []struct {
			layer string
			expr  string
			opt   salsa.Options
		}{
			{"epoch", fmt.Sprintf("epoch(%d,cms)", procs), salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: cfg.seed}},
			{"sharded", fmt.Sprintf("sharded(%d,cms)", shards), salsa.Options{Width: 1 << 14, Seed: cfg.seed}},
			{"mutex", "sharded(1,cms)", salsa.Options{Width: 1 << 14, Seed: cfg.seed}},
		}
		for _, l := range layers {
			for _, path := range ingestPaths {
				best := time.Duration(1<<63 - 1)
				for t := 0; t < trials; t++ {
					spec, err := salsa.ParseSpec(l.expr, l.opt)
					if err != nil {
						return err
					}
					if d := ingestTopology(salsa.MustBuild(spec), path, pc, data); d < best {
						best = d
					}
				}
				mops := float64(cfg.n) / best.Seconds() / 1e6
				fmt.Fprintf(out, "%s,%s,%d,%.2f\n", l.layer, path, procs, mops)
				record(fmt.Sprintf("ingest/%s/%s/p%d", l.layer, path, procs), best, cfg.n)
			}
		}
	}

	// Single-core parity: adopting the epoch topology in place of Sharded
	// must cost nothing before concurrency exists. The compatibility path
	// (direct Update/Query through the view lock, no writers, no merger)
	// is measured against the sharded layer it replaces (hash route plus
	// shard mutex) and against the plain sketch as the floor.
	runtime.GOMAXPROCS(1)
	opt := salsa.Options{Width: 1 << 14, Merge: salsa.MergeSum, Seed: cfg.seed}
	plain := salsa.MustBuild(salsa.CountMinOf(opt)).(*salsa.CountMin)
	sharded := salsa.MustBuild(salsa.ShardedBy(salsa.CountMinOf(opt), 1)).(*salsa.ShardedCountMin)
	epoch := salsa.MustBuild(salsa.EpochShardedBy(salsa.CountMinOf(opt), 1)).(*salsa.EpochCountMin)
	parity := []struct {
		name string
		fn   func()
	}{
		{"parity/plain/update", func() {
			for _, x := range data {
				plain.Increment(x)
			}
		}},
		{"parity/sharded/update", func() {
			for _, x := range data {
				sharded.Increment(x)
			}
		}},
		{"parity/epoch/update", func() {
			for _, x := range data {
				epoch.Increment(x)
			}
		}},
		{"parity/plain/query", func() {
			for _, x := range data {
				_ = plain.Query(x)
			}
		}},
		{"parity/sharded/query", func() {
			for _, x := range data {
				_ = sharded.Query(x)
			}
		}},
		{"parity/epoch/query", func() {
			for _, x := range data {
				_ = epoch.Query(x)
			}
		}},
	}
	fmt.Fprintln(out, "point,procs,mops")
	for _, p := range parity {
		p.fn() // warm
		best := timePerf(trials, p.fn)
		fmt.Fprintf(out, "%s,1,%.2f\n", p.name, float64(cfg.n)/best.Seconds()/1e6)
		record(p.name, best, cfg.n)
	}

	return writePerfReport(perfConfig{json: jsonPath}, report, out)
}
