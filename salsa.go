// Package salsa is a Go implementation of SALSA (Self-Adjusting Lean
// Streaming Analytics, ICDE 2021): sketching with dynamically re-sized
// counters. Counters start small (8 bits by default) and merge with their
// neighbors when they overflow, so a given memory budget holds far more
// counters without limiting the counting range.
//
// The package offers the three classic frequency sketches — CountMin,
// ConservativeUpdate and CountSketch — over three counter backends
// selectable per sketch: the fixed-width Baseline, SALSA, and the
// fine-grained Tango variant. On top of them it provides the paper's
// derived machinery: heavy-hitter/top-k tracking, Linear Counting distinct
// estimation, change detection via sketch subtraction, the UnivMon
// universal sketch, the Cold Filter framework, and the AEE sampling
// estimators with SALSA's merge-or-downsample overflow policy.
//
// Sketch topologies are described by a small composable Spec algebra and
// realized by Build: the sketch kind (CountMinOf, ConservativeOf,
// CountSketchOf, MonitorOf, TopKOf) is one choice, and the deployment
// shape is layered on with the Windowed and ShardedBy decorators — every
// orthogonal combination is spelled by composition, not by a dedicated
// constructor. Quick start:
//
//	s, err := salsa.Build(salsa.CountMinOf(salsa.Options{Width: 1 << 16}))
//	if err != nil { ... }
//	cm := s.(*salsa.CountMin)
//	cm.Increment(item)
//	estimate := cm.Query(item)
//
// Time-scoped queries — "heavy hitters in the last minute", "volume over
// the last N packets" — are served by the Windowed decorator (a ring of
// bucket sketches rotated by item count or caller-driven ticks, answering
// from an incrementally-maintained merge of the live buckets), and
// multi-goroutine ingestion by the ShardedBy decorator (hash-routed,
// independently-locked shard sketches); the two compose:
//
//	s, err := salsa.Build(salsa.ShardedBy(
//		salsa.Windowed(salsa.CountMinOf(opt), 4, 1<<20), 8))
//
// Every topology the algebra can express serializes through the universal
// envelope codec Marshal/Unmarshal and is fully operational — and
// mergeable with its seed-sharing peers — after decoding, the paper's
// distributed use case (§V) at full generality.
//
// All sketches are deterministic given Options.Seed and are not safe for
// concurrent mutation unless wrapped in ShardedBy; use the batch APIs
// (UpdateBatch/IncrementBatch/QueryBatch) for bulk streams.
//
//salsa:typederrors
package salsa

import (
	"fmt"

	"salsa/internal/core"
	"salsa/internal/hashing"
)

// Sketch is the ingestion surface shared by the package's frequency
// sketches and trackers; it is the backend constraint of the Sharded
// concurrency layer. UpdateBatch must be equivalent to calling Update on
// each item in slice order.
type Sketch interface {
	// Update adds count occurrences of item.
	Update(item uint64, count int64)
	// UpdateBatch adds count occurrences of every item, in order.
	UpdateBatch(items []uint64, count int64)
	// MemoryBits returns the backend footprint in bits.
	MemoryBits() int
}

// Compile-time checks that every leaf backend satisfies Sketch.
var (
	_ Sketch = (*CountMin)(nil)
	_ Sketch = (*CountSketch)(nil)
	_ Sketch = (*Monitor)(nil)
	_ Sketch = (*TopK)(nil)
	_ Sketch = (*UnivMon)(nil)
	_ Sketch = (*AEE)(nil)
	_ Sketch = (*Distinct)(nil)
	_ Sketch = (*WindowedDistinct)(nil)
	_ Sketch = (*ColdFilter)(nil)
	_ Sketch = (*Pyramid)(nil)
)

// Mode selects the counter backend of a sketch.
type Mode int

const (
	// ModeSALSA is the paper's scheme: small counters that merge with
	// their power-of-two-aligned neighbors on overflow. The default.
	ModeSALSA Mode = iota
	// ModeBaseline uses fixed-width counters (32 bits unless overridden),
	// the configuration the paper's baselines use.
	ModeBaseline
	// ModeTango grows counters one cell at a time instead of doubling
	// (§IV, "Fine-grained Counter Merges"); slightly more accurate,
	// slower to decode. Not available for CountSketch.
	ModeTango
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSALSA:
		return "salsa"
	case ModeBaseline:
		return "baseline"
	case ModeTango:
		return "tango"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Merge selects how merged counters combine their values.
type Merge int

const (
	// MergeDefault lets the sketch pick the correct policy: max for
	// cash-register CountMin and ConservativeUpdate, sum elsewhere.
	MergeDefault Merge = iota
	// MergeSum sets a merged counter to the sum of its parts; correct in
	// the Strict Turnstile model (negative updates allowed).
	MergeSum
	// MergeMax sets a merged counter to the max of its parts; more
	// accurate, but only correct in the Cash Register model.
	MergeMax
)

// Options configures a sketch. The zero value plus a Width is usable: a
// SALSA sketch with 8-bit base counters, 4 rows (5 for CountSketch), and
// the model-appropriate merge policy.
type Options struct {
	// Depth is the number of rows d; 0 means the paper's defaults
	// (4 for CountMin/ConservativeUpdate, 5 for CountSketch).
	Depth int
	// Width is the number of base counter slots per row; required, and
	// must be a power of two.
	Width int
	// Mode picks the counter backend; ModeSALSA if unset.
	Mode Mode
	// CounterBits is the base counter size in bits: for ModeBaseline the
	// fixed width (default 32), for SALSA/Tango the initial size s
	// (default 8).
	CounterBits uint
	// Merge picks the merged-counter combine rule (SALSA/Tango only).
	Merge Merge
	// CompactEncoding replaces the simple one-bit-per-counter merge
	// encoding with the near-optimal < 0.594 bits/counter encoding of
	// Appendix A (SALSA only; slightly slower, smaller).
	CompactEncoding bool
	// Seed makes hashing deterministic; sketches that will be merged or
	// subtracted must share it.
	Seed uint64
}

func (o Options) withDefaults(defaultDepth int, defaultMerge Merge) Options {
	if o.Depth == 0 {
		o.Depth = defaultDepth
	}
	if o.CounterBits == 0 {
		if o.Mode == ModeBaseline {
			o.CounterBits = 32
		} else {
			o.CounterBits = 8
		}
	}
	if o.Merge == MergeDefault {
		o.Merge = defaultMerge
	}
	return o
}

// An OptionsError reports Options that no sketch kind can use — the
// kind-independent invariants Validate checks. errors.As-match it to
// distinguish bad Options from an impossible composition
// (*CompositionError) at Build time.
type OptionsError struct {
	// Field names the offending Options field.
	Field string
	// Reason states the violated constraint, including the offending value.
	Reason string
}

func (e *OptionsError) Error() string { return "salsa: " + e.Reason }

// optionsErrf builds an *OptionsError for field.
func optionsErrf(field, format string, args ...any) error {
	return &OptionsError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the Options are usable by any sketch kind. It
// checks the kind-independent invariants; kind-specific rules (CountSketch
// rejecting ModeTango, windowed sketches rejecting MergeMax, ...) are
// enforced by Build on the full topology Spec. The deprecated New*
// constructors panic where Build returns these same errors.
func (o Options) Validate() error {
	if o.Width <= 0 || o.Width&(o.Width-1) != 0 {
		return optionsErrf("Width", "Width %d must be a positive power of two", o.Width)
	}
	if o.Depth < 0 {
		return optionsErrf("Depth", "negative Depth %d", o.Depth)
	}
	if o.Depth > maxDepth {
		return optionsErrf("Depth", "Depth %d exceeds the maximum %d", o.Depth, maxDepth)
	}
	if o.Mode < ModeSALSA || o.Mode > ModeTango {
		return optionsErrf("Mode", "unknown %v", o.Mode)
	}
	if o.Merge < MergeDefault || o.Merge > MergeMax {
		return optionsErrf("Merge", "unknown Merge(%d)", int(o.Merge))
	}
	// Mirror the core row constructors' counter rules, so construction (and
	// the envelope decoder, which validates declared Options before building
	// reference sketches) returns errors where core would panic.
	bits := o.CounterBits
	if bits == 0 { // the defaults withDefaults will fill in
		if o.Mode == ModeBaseline {
			bits = 32
		} else {
			bits = 8
		}
	}
	if bits&(bits-1) != 0 {
		return optionsErrf("CounterBits", "CounterBits %d must be a power of two", o.CounterBits)
	}
	if o.Mode == ModeBaseline {
		if bits > 64 {
			return optionsErrf("CounterBits", "CounterBits %d exceeds 64", o.CounterBits)
		}
	} else if bits > 32 {
		return optionsErrf("CounterBits", "CounterBits %d exceeds 32 (SALSA/Tango base counters subdivide a 64-bit word)", o.CounterBits)
	}
	if o.Mode == ModeSALSA {
		if group := int(64 / bits); o.Width < group {
			return optionsErrf("Width", "ModeSALSA Width %d must hold a full 64-bit word of %d-bit counters (at least %d)", o.Width, bits, group)
		}
		if o.CompactEncoding && o.Width < 32 {
			return optionsErrf("Width", "CompactEncoding Width %d must hold a full 32-counter group", o.Width)
		}
	}
	if o.CompactEncoding && o.Mode != ModeSALSA {
		return optionsErrf("CompactEncoding", "CompactEncoding requires ModeSALSA, got %v", o.Mode)
	}
	return nil
}

// maxDepth bounds the row count of a sketch; it matches the decoder's
// hostile-payload bound, so every constructible sketch is serializable.
const maxDepth = 1024

// validateTrackerK bounds a tracker's heap capacity: positive and within
// the envelope decoder's maxHeapK, so every constructible tracker is
// serializable (and k fits int on 32-bit platforms).
func validateTrackerK(name string, k int) error {
	if k <= 0 {
		return fmt.Errorf("salsa: %s needs a positive k, got %d", name, k)
	}
	if k > maxHeapK {
		return fmt.Errorf("salsa: %s k %d exceeds the maximum %d", name, k, maxHeapK)
	}
	return nil
}

func (o Options) policy() core.MergePolicy {
	if o.Merge == MergeMax {
		return core.MaxMerge
	}
	return core.SumMerge
}

// KeyBytes hashes an arbitrary byte key (such as a packet 5-tuple) to the
// uint64 item space the sketches consume, using BobHash as in the paper's
// reference implementation. It is deterministic and seed-free; use distinct
// logical namespaces by prefixing the key.
//
//salsa:hotpath
func KeyBytes(key []byte) uint64 {
	return hashing.Bob64(key, 0x5a15a0b0b)
}

// KeyString is KeyBytes for strings.
//
//salsa:hotpath
func KeyString(key string) uint64 {
	return KeyBytes([]byte(key))
}
