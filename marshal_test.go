package salsa

import (
	"bytes"
	"sync"
	"testing"

	"salsa/internal/stream"
)

func TestCountMinMarshalRoundTrip(t *testing.T) {
	for _, opt := range []Options{
		{Width: 512, Seed: 3},
		{Width: 512, Mode: ModeBaseline, Seed: 3},
		{Width: 512, CompactEncoding: true, Seed: 3},
	} {
		cm := NewCountMin(opt)
		data := stream.Zipf(20000, 500, 1.0, 4)
		for _, x := range data {
			cm.Increment(x)
		}
		blob, err := cm.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalCountMin(blob)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 2000; x++ {
			if back.Query(x) != cm.Query(x) {
				t.Fatalf("opt %+v: query mismatch for %d", opt, x)
			}
		}
		if back.Options() != cm.Options() {
			t.Fatal("options lost")
		}
		// A decoded sketch must keep working and interoperate with the
		// original's peers (shared seeds).
		peer := NewCountMin(opt)
		peer.Update(99, 7)
		back.Merge(peer)
		if back.Query(99) < cm.Query(99)+7 {
			t.Fatal("decoded sketch cannot merge")
		}
	}
}

func TestConservativeSurvivesMarshal(t *testing.T) {
	cu := NewConservativeUpdate(Options{Width: 256, Seed: 5})
	cu.Increment(1)
	blob, _ := cu.MarshalBinary()
	back, err := UnmarshalCountMin(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.conservative {
		t.Fatal("conservative mode lost")
	}
}

func TestCountSketchMarshalRoundTrip(t *testing.T) {
	cs := NewCountSketch(Options{Width: 1024, Seed: 6})
	cs.Update(1, 300)
	cs.Update(2, -50)
	blob, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCountSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Query(1) != cs.Query(1) || back.Query(2) != cs.Query(2) {
		t.Fatal("queries changed")
	}
	// Change detection across the serialization boundary.
	other := NewCountSketch(Options{Width: 1024, Seed: 6})
	other.Update(1, 100)
	back.Subtract(other)
	if back.Query(1) != 200 {
		t.Fatalf("diff = %d, want 200", back.Query(1))
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := UnmarshalCountMin([]byte("xx")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := UnmarshalCountSketch(nil); err == nil {
		t.Fatal("accepted nil")
	}
	cm := NewCountMin(Options{Width: 128})
	blob, _ := cm.MarshalBinary()
	if _, err := UnmarshalCountSketch(blob); err == nil {
		t.Fatal("accepted a CountMin payload as CountSketch")
	}
}

func TestTangoMarshalRoundTrip(t *testing.T) {
	cm := NewCountMin(Options{Width: 128, Mode: ModeTango, Seed: 5})
	for i := uint64(0); i < 5000; i++ {
		cm.Update(i%97, int64(i%13)+1) // force fine-grained merges
	}
	blob, err := cm.MarshalBinary()
	if err != nil {
		t.Fatalf("tango marshal: %v", err)
	}
	back, err := UnmarshalCountMin(blob)
	if err != nil {
		t.Fatalf("tango unmarshal: %v", err)
	}
	for i := uint64(0); i < 97; i++ {
		if got, want := back.Query(i), cm.Query(i); got != want {
			t.Fatalf("Query(%d) = %d after round-trip, want %d", i, got, want)
		}
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatalf("tango re-marshal: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("tango round-trip is not byte-identical")
	}
	// Continued ingestion must not diverge from the original.
	for i := uint64(0); i < 3000; i++ {
		cm.Update(i%89, 3)
		back.Update(i%89, 3)
	}
	for i := uint64(0); i < 97; i++ {
		if back.Query(i) != cm.Query(i) {
			t.Fatalf("Query(%d) diverged after continued ingestion", i)
		}
	}
}

func TestShardedCountMinConcurrent(t *testing.T) {
	s := NewShardedCountMin(Options{Width: 1024, Seed: 7}, 4)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	const perG = 5000
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Increment(uint64(i % 100))
			}
		}(g)
	}
	wg.Wait()
	for x := uint64(0); x < 100; x++ {
		truth := uint64(goroutines * perG / 100)
		if got := s.Query(x); got < truth {
			t.Fatalf("item %d: %d < truth %d", x, got, truth)
		}
	}
	if s.MemoryBits() == 0 {
		t.Fatal("no memory accounted")
	}
}

func TestShardedRoutesConsistently(t *testing.T) {
	s := NewShardedCountMin(Options{Width: 256, Seed: 8}, 3) // rounds to 4
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want rounding to 4", s.Shards())
	}
	s.Update(42, 10)
	if s.Query(42) != 10 {
		t.Fatalf("Query = %d", s.Query(42))
	}
	if s.Query(43) != 0 {
		t.Fatal("cross-shard contamination")
	}
}
