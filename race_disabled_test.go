//go:build !race

package salsa

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false
