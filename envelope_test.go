package salsa

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"salsa/internal/stream"
)

// roundTripItems is a deterministic mixed-skew probe stream.
var roundTripItems = func() []uint64 {
	items := make([]uint64, 4000)
	x := uint64(0x243f6a8885a308d3)
	for i := range items {
		x = x*6364136223846793005 + 1442695040888963407
		items[i] = x >> 52 // ~4k distinct values, heavy collisions
	}
	return items
}()

// universalTopologies enumerates one representative spec per topology in
// the algebra, including mode/encoding variants of the leaves. Every entry
// must round-trip through Marshal/Unmarshal byte-identically.
func universalTopologies() []struct {
	name string
	spec Spec
} {
	opt := Options{Width: 256, Seed: 9}
	sum := Options{Width: 256, Merge: MergeSum, Seed: 9}
	return []struct {
		name string
		spec Spec
	}{
		{"countmin-salsa", CountMinOf(opt)},
		{"countmin-baseline", CountMinOf(Options{Width: 128, Mode: ModeBaseline, Seed: 9})},
		{"countmin-compact", CountMinOf(Options{Width: 256, CompactEncoding: true, Seed: 9})},
		{"countmin-sum", CountMinOf(sum)},
		{"conservative", ConservativeOf(opt)},
		{"countsketch-salsa", CountSketchOf(opt)},
		{"countsketch-baseline", CountSketchOf(Options{Width: 128, Mode: ModeBaseline, Seed: 9})},
		{"monitor", MonitorOf(opt, 8)},
		{"topk", TopKOf(opt, 8)},
		{"windowed-countmin", Windowed(CountMinOf(opt), 4, 700)},
		{"windowed-conservative", Windowed(ConservativeOf(opt), 3, 900)},
		{"windowed-countsketch", Windowed(CountSketchOf(opt), 4, 700)},
		{"windowed-monitor", Windowed(MonitorOf(opt, 6), 3, 900)},
		{"windowed-tick-driven", Windowed(CountMinOf(opt), 4, 0)},
		{"sharded-countmin", ShardedBy(CountMinOf(opt), 4)},
		{"sharded-conservative", ShardedBy(ConservativeOf(opt), 2)},
		{"sharded-countsketch", ShardedBy(CountSketchOf(opt), 4)},
		{"sharded-monitor", ShardedBy(MonitorOf(opt, 8), 2)},
		{"sharded-windowed-countmin", ShardedBy(Windowed(CountMinOf(opt), 3, 500), 4)},
		{"sharded-windowed-countsketch", ShardedBy(Windowed(CountSketchOf(opt), 3, 500), 4)},
		{"sharded-windowed-monitor", ShardedBy(Windowed(MonitorOf(opt, 6), 3, 500), 2)},
		{"univmon-salsa", UnivMonOf(opt, 8, 12)},
		{"univmon-baseline", UnivMonOf(Options{Width: 128, Mode: ModeBaseline, Seed: 9}, 6, 8)},
		{"aee-salsa", AEEOf(opt)},
		{"aee-baseline", AEEOf(Options{Width: 256, Mode: ModeBaseline, Seed: 9})},
		{"distinct", DistinctOf(Options{Width: 1 << 15, Seed: 9})},
		{"windowed-distinct", Windowed(DistinctOf(Options{Width: 1 << 15, Seed: 9}), 4, 700)},
		{"coldfilter-cms", Filtered(CountMinOf(opt))},
		{"coldfilter-cus", Filtered(ConservativeOf(opt))},
		{"coldfilter-tango", Filtered(ConservativeOf(Options{Width: 256, Mode: ModeTango, Seed: 9}))},
		{"pyramid", Tiered(CountMinOf(opt))},
		{"sharded-aee", ShardedBy(AEEOf(opt), 2)},
		{"sharded-distinct", ShardedBy(DistinctOf(Options{Width: 1 << 15, Seed: 9}), 2)},
		{"sharded-coldfilter", ShardedBy(Filtered(ConservativeOf(opt)), 2)},
		{"sharded-pyramid", ShardedBy(Tiered(CountMinOf(opt)), 2)},
		{"epoch-countmin", EpochShardedBy(CountMinOf(sum), 2)},
		{"epoch-conservative", EpochShardedBy(ConservativeOf(sum), 2)},
		{"epoch-countsketch", EpochShardedBy(CountSketchOf(sum), 2)},
		{"epoch-monitor", EpochShardedBy(MonitorOf(sum, 8), 2)},
		{"epoch-distinct", EpochShardedBy(DistinctOf(Options{Width: 1 << 15, Merge: MergeSum, Seed: 9}), 2)},
		{"epoch-windowed-countmin", EpochShardedBy(Windowed(CountMinOf(sum), 4, 0), 2)},
		{"epoch-windowed-countsketch", EpochShardedBy(Windowed(CountSketchOf(sum), 4, 0), 2)},
	}
}

// ingestRoundTrip streams enough items that count-rotated windows are
// mid-bucket with retired buckets behind them, then lands one explicit
// Tick on tickable topologies so the decoded ring must also resume from a
// just-rotated state in the tick-driven case.
func ingestRoundTrip(s Sketch, items []uint64) {
	s.UpdateBatch(items[:len(items)/2], 1)
	if tk, ok := s.(interface{ Tick() }); ok {
		tk.Tick()
	}
	s.UpdateBatch(items[len(items)/2:], 1)
}

// observe captures the query surface of any topology: per-item estimates
// (normalized to int64) plus the tracker candidate sets where present.
func observe(t *testing.T, s Sketch, items []uint64) []int64 {
	t.Helper()
	var out []int64
	q := func(item uint64) int64 {
		switch x := s.(type) {
		case *CountMin:
			return int64(x.Query(item))
		case *CountSketch:
			return x.Query(item)
		case *Monitor:
			return int64(x.Sketch().Query(item))
		case *TopK:
			return x.Sketch().Query(item)
		case *WindowedCountMin:
			return int64(x.Query(item))
		case *WindowedCountSketch:
			return x.Query(item)
		case *WindowedMonitor:
			return int64(x.Query(item))
		case *ShardedCountMin:
			return int64(x.Query(item))
		case *ShardedCountSketch:
			return x.Query(item)
		case *ShardedMonitor:
			return int64(x.Query(item))
		case *ShardedWindowedCountMin:
			return int64(x.Query(item))
		case *ShardedWindowedCountSketch:
			return x.Query(item)
		case *ShardedWindowedMonitor:
			return int64(x.Query(item))
		case *AEE:
			return int64(math.Float64bits(x.Query(item)))
		case *ShardedAEE:
			return int64(math.Float64bits(x.Query(item)))
		case *Distinct:
			return int64(x.Query(item))
		case *ShardedDistinct:
			return int64(x.Query(item))
		case *WindowedDistinct:
			return int64(x.Query(item))
		case *ColdFilter:
			return int64(x.Query(item))
		case *ShardedColdFilter:
			return int64(x.Query(item))
		case *Pyramid:
			return int64(x.Query(item))
		case *ShardedPyramid:
			return int64(x.Query(item))
		case *EpochCountMin:
			return int64(x.Query(item))
		case *EpochCountSketch:
			return x.Query(item)
		case *EpochMonitor:
			return int64(x.Query(item))
		case *EpochDistinct:
			return int64(x.Query(item))
		case *EpochWindowedCountMin:
			return int64(x.Query(item))
		case *EpochWindowedCountSketch:
			return x.Query(item)
		case *EpochWindowedDistinct:
			return int64(x.Query(item))
		}
		t.Fatalf("observe: unhandled topology %T", s)
		return 0
	}
	// UnivMon has no per-item query surface; its observable state is the
	// G-sum estimates plus the per-level heavy-hitter candidates.
	if um, ok := s.(*UnivMon); ok {
		for _, est := range []float64{um.Entropy(), um.Distinct(), um.Moment(2)} {
			out = append(out, int64(math.Float64bits(est)))
		}
		for _, e := range um.HeavyHitters() {
			out = append(out, int64(e.Item), e.Count)
		}
		return out
	}
	for _, x := range items[:256] {
		out = append(out, q(x))
	}
	// Estimate-style surfaces observed on top of the per-item queries; a
	// saturated Linear Counting row maps to a sentinel so both sides of an
	// equivalence check agree even out of the estimator's operating range.
	estimateBits := func(est float64, err error) int64 {
		if err != nil {
			return -1
		}
		return int64(math.Float64bits(est))
	}
	switch x := s.(type) {
	case *Distinct:
		out = append(out, estimateBits(x.Estimate()))
	case *WindowedDistinct:
		out = append(out, estimateBits(x.Estimate()))
	case *ShardedDistinct:
		out = append(out, estimateBits(x.Estimate()))
	case *AEE:
		out = append(out, int64(math.Float64bits(x.SampleProb())))
	case *ColdFilter:
		out = append(out, int64(x.Stage2Volume()))
	}
	type topper interface{ Top() []ItemCount }
	if tp, ok := s.(topper); ok {
		for _, e := range tp.Top() {
			out = append(out, int64(e.Item), e.Count)
		}
	}
	return out
}

func equalObservations(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUniversalRoundTrip is the envelope's core contract: for every
// topology, Unmarshal(Marshal(x)) re-marshals byte-identically, answers
// identical queries, and keeps evolving identically to the original under
// further ingestion (proving the ring odometers, shard routing, and heaps
// were restored exactly, not just the counters).
func TestUniversalRoundTrip(t *testing.T) {
	for _, tc := range universalTopologies() {
		t.Run(tc.name, func(t *testing.T) {
			s := MustBuild(tc.spec)
			ingestRoundTrip(s, roundTripItems)

			blob, err := Marshal(s)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			back, err := Unmarshal(blob)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if fmt.Sprintf("%T", back) != fmt.Sprintf("%T", s) {
				t.Fatalf("decoded type %T, want %T", back, s)
			}
			blob2, err := Marshal(back)
			if err != nil {
				t.Fatalf("re-Marshal: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("re-marshal differs: %d vs %d bytes", len(blob), len(blob2))
			}
			if !equalObservations(observe(t, s, roundTripItems), observe(t, back, roundTripItems)) {
				t.Fatal("decoded sketch answers differ")
			}

			// The decoded topology must keep evolving exactly like the
			// original: same rotations, same shard routing, same heap
			// displacement decisions.
			more := roundTripItems[:1500]
			s.UpdateBatch(more, 1)
			back.UpdateBatch(more, 1)
			if tk, ok := s.(interface{ Tick() }); ok {
				tk.Tick()
				back.(interface{ Tick() }).Tick()
				s.UpdateBatch(more, 1)
				back.UpdateBatch(more, 1)
			}
			if !equalObservations(observe(t, s, roundTripItems), observe(t, back, roundTripItems)) {
				t.Fatal("decoded sketch diverges under further ingestion")
			}
			b1, err := Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("original and decoded marshal differently after further ingestion")
			}
		})
	}
}

// TestBatchSequentialEquivalence pins the fast batch ingestion paths to
// the general single-update semantics: for every topology, a stream fed
// through UpdateBatch in uneven chunks must leave byte-identical marshal
// state to the same stream fed one Update at a time. This is what makes
// the word-parallel batch kernels and per-shard grouping safe — they may
// reorder work internally, but never observably.
func TestBatchSequentialEquivalence(t *testing.T) {
	for _, tc := range universalTopologies() {
		t.Run(tc.name, func(t *testing.T) {
			single := MustBuild(tc.spec)
			batched := MustBuild(tc.spec)
			items := roundTripItems[:1500]
			for _, x := range items {
				single.Update(x, 1)
			}
			// Uneven chunk sizes cross every internal alignment boundary
			// of the word-parallel paths.
			for i, step := 0, 1; i < len(items); i, step = i+step, step*3+1 {
				end := i + step
				if end > len(items) {
					end = len(items)
				}
				batched.UpdateBatch(items[i:end], 1)
			}
			b1, err := Marshal(single)
			if err != nil {
				t.Fatalf("Marshal single: %v", err)
			}
			b2, err := Marshal(batched)
			if err != nil {
				t.Fatalf("Marshal batched: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("batch and sequential ingestion diverge: %d vs %d bytes", len(b1), len(b2))
			}
			if !equalObservations(observe(t, single, items), observe(t, batched, items)) {
				t.Fatal("batch and sequential ingestion answer differently")
			}
		})
	}
}

// TestUniversalLargeBMidRotationRoundTrip pins the rotation-stack restore
// contract at a ring size where the two-stack machinery matters: a B=64
// window serialized mid-bucket and mid-flip-cycle must decode to a ring
// whose rebuilt front/back aggregates continue bit-identically — same query
// view bytes, same marshal bytes — through several subsequent flip cycles.
func TestUniversalLargeBMidRotationRoundTrip(t *testing.T) {
	const (
		buckets  = 64
		interval = 100
	)
	data := stream.Zipf(buckets*interval*4, 900, 1.0, 131)
	for name, spec := range map[string]Spec{
		"cms": Windowed(CountMinOf(Options{Width: 1 << 9, Seed: 17}), buckets, interval),
		"cus": Windowed(ConservativeOf(Options{Width: 1 << 9, Seed: 17}), buckets, interval),
		"cs":  Windowed(CountSketchOf(Options{Width: 1 << 9, Seed: 17}), buckets, interval),
	} {
		t.Run(name, func(t *testing.T) {
			s := MustBuild(spec)
			// 70 rotations in (mid flip cycle: 70 ≡ 7 mod 63) plus half a
			// bucket, so both stacks and the current bucket are non-trivial.
			warm := 70*interval + interval/2
			s.UpdateBatch(data[:warm], 1)

			blob, err := Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(blob)
			if err != nil {
				t.Fatal(err)
			}

			viewBlob := func(x Sketch) []byte {
				t.Helper()
				var blob []byte
				var err error
				switch w := x.(type) {
				case *WindowedCountMin:
					blob, err = w.ring.View().MarshalBinary()
				case *WindowedCountSketch:
					blob, err = w.ring.View().MarshalBinary()
				default:
					t.Fatalf("unexpected type %T", x)
				}
				if err != nil {
					t.Fatal(err)
				}
				return blob
			}
			if !bytes.Equal(viewBlob(s), viewBlob(back)) {
				t.Fatal("decoded ring's rebuilt query view differs from the original's")
			}

			// Continue both through two more full flip cycles, comparing the
			// live view and the full envelope at rotation-aligned and
			// mid-bucket checkpoints.
			rest := data[warm : warm+2*(buckets-1)*interval+interval/2]
			for len(rest) > 0 {
				chunk := interval/2 + 17
				if chunk > len(rest) {
					chunk = len(rest)
				}
				s.UpdateBatch(rest[:chunk], 1)
				back.UpdateBatch(rest[:chunk], 1)
				rest = rest[chunk:]
				if !bytes.Equal(viewBlob(s), viewBlob(back)) {
					t.Fatal("views diverged under continued ingestion")
				}
			}
			b1, err := Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("envelopes diverged after continued ingestion")
			}
			wantRot := uint64((warm + 2*(buckets-1)*interval + interval/2) / interval)
			rotOf := func(x Sketch) uint64 {
				switch w := x.(type) {
				case *WindowedCountMin:
					return w.Rotations()
				case *WindowedCountSketch:
					return w.Rotations()
				}
				return 0
			}
			if rotOf(s) != wantRot || rotOf(back) != wantRot {
				t.Fatalf("rotations %d/%d, want %d", rotOf(s), rotOf(back), wantRot)
			}
		})
	}
}

// TestUniversalMergeAcrossProcesses is the distributed scenario at full
// generality: a decoded sketch merges with a seed-sharing peer it never
// met, matching the all-local merge bit for bit.
func TestUniversalMergeAcrossProcesses(t *testing.T) {
	opt := Options{Width: 512, Merge: MergeSum, Seed: 21}
	a := MustBuild(CountMinOf(opt)).(*CountMin)
	b := MustBuild(CountMinOf(opt)).(*CountMin)
	a.UpdateBatch(roundTripItems[:2000], 1)
	b.UpdateBatch(roundTripItems[2000:], 1)

	blob, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	merged := remote.(*CountMin)
	merged.Merge(b)

	local := MustBuild(CountMinOf(opt)).(*CountMin)
	local.UpdateBatch(roundTripItems, 1)
	lb, err := local.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, mb) {
		t.Fatal("decoded+merged sketch differs from the all-local union")
	}
}

// TestUniversalShardedSnapshotUnderIngestion: Marshal on a sharded
// topology under concurrent writers must produce a decodable, internally
// consistent payload (all shard locks are held for the snapshot).
func TestUniversalShardedSnapshotUnderIngestion(t *testing.T) {
	s := MustBuild(ShardedBy(Windowed(CountMinOf(Options{Width: 256, Seed: 4}), 3, 400), 4)).(*ShardedWindowedCountMin)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					s.Update(uint64(g*1000+i%500), 1)
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		blob, err := Marshal(s)
		if err != nil {
			t.Errorf("Marshal under ingestion: %v", err)
			break
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Errorf("snapshot does not decode: %v", err)
			break
		}
		if blob2, err := Marshal(back); err != nil || !bytes.Equal(blob, blob2) {
			t.Errorf("snapshot not byte-stable (err=%v)", err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestUniversalRejectsGarbage covers the envelope's hostile-byte edges the
// fuzz target then explores at depth.
func TestUniversalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("accepted nil")
	}
	if _, err := Unmarshal([]byte("definitely not a sketch")); err == nil {
		t.Fatal("accepted garbage")
	}
	blob, err := Marshal(MustBuild(CountMinOf(Options{Width: 64, Seed: 1})))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong version.
	bad := append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted unknown version")
	}
	// Unknown tag.
	bad = append([]byte(nil), blob...)
	bad[5] = 200
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted unknown tag")
	}
	// The old per-type format is not an envelope.
	cm := MustBuild(CountMinOf(Options{Width: 64, Seed: 1})).(*CountMin)
	old, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(old); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("per-type payload: got %v, want ErrBadPayload", err)
	}
	// Tango serializes since the reference arena grew a codec; the envelope
	// must round-trip it byte-identically like every other mode.
	tango := MustBuild(CountMinOf(Options{Width: 64, Mode: ModeTango, Seed: 1}))
	ingestRoundTrip(tango, roundTripItems)
	blob, err = Marshal(tango)
	if err != nil {
		t.Fatalf("tango marshal: %v", err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("tango unmarshal: %v", err)
	}
	blob2, err := Marshal(back)
	if err != nil {
		t.Fatalf("tango re-marshal: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("tango envelope round-trip is not byte-identical")
	}
}

// TestUniversalRejectsHugeDeclaredGeometry: a tiny windowed payload whose
// Options header declares an enormous (but power-of-two, so
// Validate-passing) Width must be rejected before the decoder builds the
// reference sketch — previously this was an unrecoverable OOM, not an
// error.
func TestUniversalRejectsHugeDeclaredGeometry(t *testing.T) {
	w := MustBuild(Windowed(CountMinOf(Options{Width: 64, Seed: 1}), 2, 10)).(*WindowedCountMin)
	w.Increment(1)
	blob, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	// The windowed payload starts with the Options header right after the
	// 6-byte envelope header: magic u32, then 7 u64 fields with Width at
	// index 1.
	bad := append([]byte(nil), blob...)
	widthOff := 6 + 4 + 8
	for i := 0; i < 8; i++ {
		bad[widthOff+i] = 0
	}
	bad[widthOff+5] = 1 // Width = 1<<40
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted a payload declaring a 2^40-slot ring")
	}
	// Width = 1<<62 makes Depth*Width wrap to 0 in a naive int product,
	// which used to slip past the allocation bound and panic in makeslice.
	for i := 0; i < 8; i++ {
		bad[widthOff+i] = 0
	}
	bad[widthOff+7] = 0x40 // Width = 1<<62
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted a payload declaring a 2^62-slot ring")
	}
}

// TestUniversalRejectsOverfullBucketCounts: with auto-rotation, the ring
// rotates the instant the current bucket's count reaches the interval, so
// a payload claiming counts[cur] >= interval (or any bucket above it) is
// non-canonical and would make Ring.Room underflow, breaking the
// batch/per-item ingestion equivalence.
func TestUniversalRejectsOverfullBucketCounts(t *testing.T) {
	w := MustBuild(Windowed(CountMinOf(Options{Width: 64, Seed: 1}), 2, 10)).(*WindowedCountMin)
	for i := 0; i < 13; i++ { // one rotation: counts = [10, 3], cur = 1
		w.Increment(uint64(i))
	}
	blob, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	// Closed bucket pinned at exactly the interval is canonical.
	if _, err := Unmarshal(blob); err != nil {
		t.Fatalf("rejected canonical mid-rotation payload: %v", err)
	}
	// Ring header after the 6-byte envelope header and 60-byte Options
	// header: conservative byte, then buckets/interval/cur/rotations u64s,
	// then one count u64 per bucket.
	countsOff := 6 + 60 + 1 + 4*8
	bad := append([]byte(nil), blob...)
	bad[countsOff+8] = 10 // counts[cur=1] = interval
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted counts[cur] == interval")
	}
	bad = append([]byte(nil), blob...)
	bad[countsOff] = 11 // closed bucket above the interval
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted a closed bucket count above the interval")
	}
}

// TestUniversalRejectsHostileRingOptions: declared ring Options that core
// row constructors would panic on must be rejected as errors before the
// decoder builds the reference sketch.
func TestUniversalRejectsHostileRingOptions(t *testing.T) {
	w := MustBuild(Windowed(CountMinOf(Options{Width: 64, Seed: 1}), 2, 10))
	w.Update(1, 1)
	blob, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	// The Options header follows the 6-byte envelope header: magic u32,
	// then u64 fields Depth, Width, Mode, CounterBits, ...
	tamper := func(field int, v byte) []byte {
		bad := append([]byte(nil), blob...)
		off := 6 + 4 + 8*field
		for i := 0; i < 8; i++ {
			bad[off+i] = 0
		}
		bad[off] = v
		return bad
	}
	// CounterBits = 3 used to reach the core row constructors and panic
	// with 'invalid SALSA base counter size'.
	if _, err := Unmarshal(tamper(3, 3)); err == nil {
		t.Fatal("accepted 3-bit counters")
	}
	// Flipping the declared mode to Tango makes the reference arena a Tango
	// ring while the bucket payloads stay SALSA; the compatibility check
	// must reject the mix before any merge runs.
	if _, err := Unmarshal(tamper(2, byte(ModeTango))); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("Tango ring header over SALSA buckets: got %v, want a bucket mismatch error", err)
	}
}

// TestUniversalRejectsMixedShardHeapCapacities: the Spec algebra gives
// every shard of a ShardedMonitor the same k, so a payload mixing heap
// capacities is unexpressable and must be refused — accepting it would
// silently truncate the cross-shard candidate set to shard 0's k.
func TestUniversalRejectsMixedShardHeapCapacities(t *testing.T) {
	s := MustBuild(ShardedBy(MonitorOf(Options{Width: 64, Seed: 1}, 4), 2))
	s.Update(7, 3) // one shard's heap holds one entry, the other's none
	blob, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0's nested envelope starts after the outer 6-byte header, the
	// routing seed, the shard count, and its own block length; its k is the
	// u64 right after the nested 6-byte header.
	bad := append([]byte(nil), blob...)
	kOff := 6 + 8 + 8 + 8 + 6
	if got := binary.LittleEndian.Uint64(bad[kOff:]); got != 4 {
		t.Fatalf("shard 0 k at offset %d = %d, want 4", kOff, got)
	}
	bad[kOff] = 2 // shard 0 k = 2, shard 1 still 4
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted mixed per-shard heap capacities")
	}
}

// TestUniversalRejectsHugeHeapCapacity: the declared tracker capacity is
// converted to int before topk.Restore, so it must be bounded by what int
// holds on every platform; 1<<32 used to pass the bound and wrap negative
// on 32-bit.
func TestUniversalRejectsHugeHeapCapacity(t *testing.T) {
	m := MustBuild(MonitorOf(Options{Width: 64, Seed: 1}, 4))
	m.Update(7, 3)
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// k is the u64 immediately after the 6-byte envelope header.
	bad := append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		bad[6+i] = 0
	}
	bad[6+4] = 1 // k = 1<<32
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted a 2^32 heap capacity")
	}
}

// TestUniversalRejectsTruncationAndTrailing: every strict prefix of every
// topology's canonical payload must error, and trailing garbage must not
// be silently ignored.
func TestUniversalRejectsTruncationAndTrailing(t *testing.T) {
	for _, tc := range universalTopologies() {
		t.Run(tc.name, func(t *testing.T) {
			s := MustBuild(tc.spec)
			ingestRoundTrip(s, roundTripItems[:1200])
			blob, err := Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			step := 1
			if len(blob) > 4096 {
				step = len(blob) / 4096
			}
			for i := 0; i < len(blob); i += step {
				if _, err := Unmarshal(blob[:i]); err == nil {
					t.Fatalf("accepted truncation to %d of %d bytes", i, len(blob))
				}
			}
			if _, err := Unmarshal(append(append([]byte(nil), blob...), 0xEE)); err == nil {
				t.Fatal("accepted trailing garbage")
			}
		})
	}
}
